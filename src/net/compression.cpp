#include "net/compression.hpp"

#include <cstring>
#include <stdexcept>
#include <vector>

namespace kompics::net::kz {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 1 << 16;
constexpr std::size_t kWindow = 1 << 16;
constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1 << kHashBits;

inline std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void emit_literals(BufferWriter& w, const std::uint8_t* base, std::size_t start,
                   std::size_t end) {
  if (start >= end) return;
  w.u8(0x00);
  w.var_u64(end - start);
  w.raw(base + start, end - start);
}

}  // namespace

std::size_t compress(const Bytes& in, Bytes& out) {
  const std::size_t before = out.size();
  BufferWriter w(out);
  w.var_u64(in.size());
  if (in.size() < kMinMatch + 1) {
    emit_literals(w, in.data(), 0, in.size());
    return out.size() - before;
  }

  // Greedy hash-head matcher: head[h] is the most recent position whose
  // 4-byte prefix hashed to h.
  std::vector<std::int64_t> head(kHashSize, -1);
  const std::uint8_t* p = in.data();
  const std::size_t n = in.size();
  std::size_t pos = 0;
  std::size_t literal_start = 0;

  while (pos + kMinMatch <= n) {
    const std::uint32_t h = hash4(p + pos);
    const std::int64_t cand = head[h];
    head[h] = static_cast<std::int64_t>(pos);

    std::size_t match_len = 0;
    if (cand >= 0 && pos - static_cast<std::size_t>(cand) <= kWindow &&
        std::memcmp(p + cand, p + pos, kMinMatch) == 0) {
      const std::size_t limit = std::min(n - pos, kMaxMatch);
      std::size_t len = kMinMatch;
      while (len < limit && p[cand + len] == p[pos + len]) ++len;
      match_len = len;
    }

    if (match_len >= kMinMatch) {
      emit_literals(w, p, literal_start, pos);
      w.u8(0x01);
      w.var_u64(pos - static_cast<std::size_t>(cand));
      w.var_u64(match_len);
      // Index a few positions inside the match so later data can refer in.
      const std::size_t end = pos + match_len;
      for (std::size_t i = pos + 1; i + kMinMatch <= end && i < pos + 8; ++i) {
        head[hash4(p + i)] = static_cast<std::int64_t>(i);
      }
      pos = end;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  emit_literals(w, p, literal_start, n);
  return out.size() - before;
}

Bytes decompress(const std::uint8_t* data, std::size_t size) {
  BufferReader r(data, size);
  const std::uint64_t expected = r.var_u64();
  Bytes out;
  out.reserve(expected);
  while (r.remaining() > 0) {
    const std::uint8_t tag = r.u8();
    if (tag == 0x00) {
      const std::uint64_t len = r.var_u64();
      if (r.remaining() < len) throw std::runtime_error("kz: truncated literal run");
      out.insert(out.end(), r.cursor(), r.cursor() + len);
      r.skip(len);
    } else if (tag == 0x01) {
      const std::uint64_t distance = r.var_u64();
      const std::uint64_t length = r.var_u64();
      if (distance == 0 || distance > out.size()) throw std::runtime_error("kz: bad distance");
      if (length < kMinMatch) throw std::runtime_error("kz: bad match length");
      // Byte-by-byte copy: overlapping matches (distance < length) replicate.
      std::size_t src = out.size() - distance;
      for (std::uint64_t i = 0; i < length; ++i) out.push_back(out[src + i]);
    } else {
      throw std::runtime_error("kz: unknown token tag");
    }
  }
  if (out.size() != expected) throw std::runtime_error("kz: size mismatch");
  return out;
}

}  // namespace kompics::net::kz
