#pragma once

// The Network abstraction (paper §2.1): a port type that accepts Message
// events at the sending node (negative direction) and delivers Message
// events at the receiving node (positive direction). Providers include
// TcpNetwork (kernel sockets), LoopbackNetwork (in-process multi-node), and
// the simulation driver's NetworkEmulator — all interchangeable behind this
// port, which is exactly the pluggable-NIO-framework property of §1/§3.

#include <memory>

#include "kompics/event.hpp"
#include "kompics/port_type.hpp"
#include "net/address.hpp"

namespace kompics::net {

/// Base class of all network messages. Immutable, carries source and
/// destination addresses as in the paper's example:
///   class Message extends Event { Address source; Address destination; }
class Message : public Event {
  KOMPICS_EVENT(Message, Event);

 public:
  Message(Address source, Address destination) : source_(source), destination_(destination) {}

  const Address& source() const { return source_; }
  const Address& destination() const { return destination_; }

 private:
  Address source_;
  Address destination_;
};

using MessagePtr = std::shared_ptr<const Message>;

/// Network port type: Message passes in both directions.
class Network : public PortType {
 public:
  Network() {
    set_name("Network");
    positive<Message>();
    negative<Message>();
  }
};

/// Status indication delivered by network providers when a send could not
/// be completed (connection refused, peer closed, serialization failure).
class SendFailed : public Event {
  KOMPICS_EVENT(SendFailed, Event);

 public:
  SendFailed(MessagePtr message, std::string reason)
      : message_(std::move(message)), reason_(std::move(reason)) {}
  const MessagePtr& message() const { return message_; }
  const std::string& reason() const { return reason_; }

 private:
  MessagePtr message_;
  std::string reason_;
};

/// Extended network port for providers that report delivery failures.
class NetworkControl : public PortType {
 public:
  NetworkControl() {
    set_name("NetworkControl");
    positive<SendFailed>();
  }
};

}  // namespace kompics::net
