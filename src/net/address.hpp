#pragma once

// Network addresses. A node is identified by (host, port); for in-process
// and simulated deployments `host` is simply a node number. Matches the
// paper's Message events which carry source and destination Addresses.

#include <cstdint>
#include <functional>
#include <string>

#include "net/buffer.hpp"

namespace kompics::net {

struct Address {
  std::uint32_t host = 0;  ///< IPv4 in host byte order, or a node id
  std::uint16_t port = 0;

  constexpr bool operator==(const Address& o) const { return host == o.host && port == o.port; }
  constexpr bool operator!=(const Address& o) const { return !(*this == o); }
  constexpr bool operator<(const Address& o) const {
    return host != o.host ? host < o.host : port < o.port;
  }

  constexpr bool valid() const { return host != 0 || port != 0; }

  /// Packs (host, port) into one comparable 64-bit key.
  constexpr std::uint64_t key() const {
    return (static_cast<std::uint64_t>(host) << 16) | port;
  }

  std::string to_string() const {
    return std::to_string((host >> 24) & 0xff) + "." + std::to_string((host >> 16) & 0xff) + "." +
           std::to_string((host >> 8) & 0xff) + "." + std::to_string(host & 0xff) + ":" +
           std::to_string(port);
  }

  /// Node-id style formatting for simulated deployments.
  std::string to_node_string() const {
    return "node-" + std::to_string(host) + ":" + std::to_string(port);
  }

  static Address loopback(std::uint16_t port) { return Address{0x7f000001u, port}; }
  /// Simulated node address: host is the node number.
  static constexpr Address node(std::uint32_t id, std::uint16_t port = 1) {
    return Address{id, port};
  }

  void write(BufferWriter& w) const {
    w.u32(host);
    w.u16(port);
  }
  static Address read(BufferReader& r) {
    Address a;
    a.host = r.u32();
    a.port = r.u16();
    return a;
  }
};

struct AddressHash {
  std::size_t operator()(const Address& a) const {
    return std::hash<std::uint64_t>{}(a.key() * 0x9e3779b97f4a7c15ULL);
  }
};

}  // namespace kompics::net

template <>
struct std::hash<kompics::net::Address> {
  std::size_t operator()(const kompics::net::Address& a) const {
    return kompics::net::AddressHash{}(a);
  }
};
