#pragma once

// LoopbackNetwork: an in-process Network provider for single-process
// multi-node deployments — the substrate for the paper's "local,
// interactive, stress-test execution" mode (§4.3) and for latency
// experiments that should exclude kernel sockets.
//
// Every node component tree embeds one LoopbackNetwork; all instances in a
// process share a LoopbackHub that routes by destination address. When
// `exercise_codec` is set, each message is serialized, optionally
// kz-compressed, decompressed, and deserialized on the way through — the
// same 4x serialize / 4x compress / 4x decompress / 4x deserialize path the
// paper's sub-millisecond latency figure includes (§4.1).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "kompics/component.hpp"
#include "kompics/kompics.hpp"
#include "net/address.hpp"
#include "net/compression.hpp"
#include "net/network_port.hpp"
#include "net/serialization.hpp"

namespace kompics::net {

class LoopbackNetwork;

/// Shared in-process switch: address -> node network component.
class LoopbackHub {
 public:
  void attach(const Address& a, LoopbackNetwork* node) {
    std::lock_guard<std::mutex> g(mu_);
    nodes_[a] = node;
  }
  void detach(const Address& a) {
    std::lock_guard<std::mutex> g(mu_);
    nodes_.erase(a);
  }
  LoopbackNetwork* route(const Address& a) const {
    std::lock_guard<std::mutex> g(mu_);
    auto it = nodes_.find(a);
    return it == nodes_.end() ? nullptr : it->second;
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> g(mu_);
    return nodes_.size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<Address, LoopbackNetwork*> nodes_;
};

using LoopbackHubPtr = std::shared_ptr<LoopbackHub>;

class LoopbackNetwork : public ComponentDefinition {
 public:
  struct Init : kompics::Init {
    Init(Address self, LoopbackHubPtr hub, bool exercise_codec = false, bool compress = false)
        : self(self), hub(std::move(hub)), exercise_codec(exercise_codec), compress(compress) {}
    Address self;
    LoopbackHubPtr hub;
    bool exercise_codec;
    bool compress;
  };

  LoopbackNetwork() {
    subscribe<Init>(control(), [this](const Init& init) {
      self_ = init.self;
      hub_ = init.hub;
      exercise_codec_ = init.exercise_codec;
      compress_ = init.compress;
      hub_->attach(self_, this);
    });
    subscribe<Stop>(control(), [this](const Stop&) {
      if (hub_ != nullptr) hub_->detach(self_);
    });
    subscribe<Message>(network_, [this](const Message& m) { send(m); });
  }

  ~LoopbackNetwork() override {
    if (hub_ != nullptr) hub_->detach(self_);
  }

  /// Called by the hub path (possibly from another node's worker thread).
  void deliver(const MessagePtr& m) { trigger(m, network_); }

  std::uint64_t sent() const { return sent_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  std::uint64_t bytes_on_wire() const { return wire_bytes_.load(std::memory_order_relaxed); }

 private:
  void send(const Message& m) {
    LoopbackNetwork* dest = hub_->route(m.destination());
    if (dest == nullptr) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      trigger(make_event<SendFailed>(nullptr, "no route to " + m.destination().to_string()),
              control_port_);
      return;
    }
    sent_.fetch_add(1, std::memory_order_relaxed);
    if (!exercise_codec_) {
      // Fast path: share the immutable event directly with the peer node.
      dest->deliver(current_event_as<Message>());
      return;
    }
    // Full wire path: serialize -> (compress) -> (decompress) -> deserialize.
    Bytes wire;
    SerializationRegistry::instance().serialize(m, wire);
    if (compress_) {
      Bytes packed;
      kz::compress(wire, packed);
      wire_bytes_.fetch_add(packed.size(), std::memory_order_relaxed);
      wire = kz::decompress(packed);
    } else {
      wire_bytes_.fetch_add(wire.size(), std::memory_order_relaxed);
    }
    dest->deliver(SerializationRegistry::instance().deserialize(wire));
  }

  Negative<Network> network_ = provide<Network>();
  Negative<NetworkControl> control_port_ = provide<NetworkControl>();

  Address self_;
  LoopbackHubPtr hub_;
  bool exercise_codec_ = false;
  bool compress_ = false;
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> wire_bytes_{0};
};

}  // namespace kompics::net
