// pingpong — the smallest possible Kompics program: two components wired
// through a channel, bouncing an event back and forth N times under the
// multi-core scheduler. Start here to learn the API surface:
// events, port types, provide/require, subscribe, trigger, connect.

#include <cstdio>
#include <cstdlib>

#include "kompics/kompics.hpp"

using namespace kompics;

// 1. Events: immutable typed objects (subtyping = C++ inheritance).
class Ball : public Event {
 public:
  explicit Ball(int bounce) : bounce(bounce) {}
  int bounce;
};

// 2. A port type: Ball travels in both directions of a PingPong port.
class PingPong : public PortType {
 public:
  PingPong() {
    set_name("PingPong");
    positive<Ball>();
    negative<Ball>();
  }
};

// 3. The server: provides the port, returns every ball it receives.
class Ponger : public ComponentDefinition {
 public:
  Ponger() {
    subscribe<Ball>(port_, [this](const Ball& b) {
      trigger(make_event<Ball>(b.bounce), port_);  // send it right back
    });
  }

 private:
  Negative<PingPong> port_ = provide<PingPong>();
};

// 4. The client: requires the port, counts bounces, serves the first ball.
class Pinger : public ComponentDefinition {
 public:
  explicit Pinger(int rounds) : rounds_(rounds) {
    subscribe<Ball>(port_, [this](const Ball& b) {
      if (b.bounce >= rounds_) {
        std::printf("rally over after %d bounces\n", b.bounce);
        return;
      }
      trigger(make_event<Ball>(b.bounce + 1), port_);
    });
    subscribe<Start>(control(), [this](const Start&) {
      std::printf("serving...\n");
      trigger(make_event<Ball>(1), port_);
    });
  }

 private:
  Positive<PingPong> port_ = require<PingPong>();
  int rounds_;
};

// 5. The root composite: creates both and connects them (paper §2.1 "Main").
class Main : public ComponentDefinition {
 public:
  explicit Main(int rounds) {
    auto ponger = create<Ponger>();
    auto pinger = create<Pinger>(rounds);
    connect(ponger.provided<PingPong>(), pinger.required<PingPong>());
  }
};

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 100000;
  auto runtime = Runtime::threaded();
  runtime->bootstrap<Main>(rounds);   // creates AND starts the root (§2.4)
  runtime->await_quiescence();        // rally finished: no pending work
  return 0;
}
