// protocol_rally — the pingpong rally, rewritten on the coroutine protocol
// layer (DESIGN.md §9). Where pingpong.cpp reassembles the rally from
// stateless handler invocations, here the whole exchange is one function:
// serve, await the correlated return with a deadline, repeat. Run both and
// diff — same ports, same events, same scheduler; only the control flow
// moved from a callback state machine into a `Proto<void>` coroutine.

#include <cstdio>
#include <cstdlib>

#include "kompics/kompics.hpp"
#include "kompics/protocol.hpp"
#include "timing/thread_timer.hpp"

using namespace kompics;

class Ball : public Event {
 public:
  explicit Ball(int bounce) : bounce(bounce) {}
  int bounce;
};

class PingPong : public PortType {
 public:
  PingPong() {
    set_name("PingPong");
    positive<Ball>();
    negative<Ball>();
  }
};

// The server side is unchanged from pingpong.cpp: a protocol peer never
// knows (or cares) whether the other end is a handler or a coroutine.
class Ponger : public ComponentDefinition {
 public:
  Ponger() {
    subscribe<Ball>(port_, [this](const Ball& b) {
      trigger(make_event<Ball>(b.bounce), port_);
    });
  }

 private:
  Negative<PingPong> port_ = provide<PingPong>();
};

class Pinger : public ComponentDefinition {
 public:
  explicit Pinger(int rounds) {
    subscribe<Start>(control(), [this, rounds](const Start&) {
      std::printf("serving...\n");
      protocol::spawn(rally(rounds));  // start the frame from any handler
    });
  }

 private:
  // The whole rally, straight-line. Each lap: trigger a Ball, suspend until
  // the echo with the matching bounce comes back — or a 1 s deadline fires.
  // Suspension parks the frame inside the component (a worker is never
  // blocked); the echo resumes it as an ordinary work item.
  protocol::Proto<void> rally(int rounds) {
    for (int i = 1; i <= rounds; ++i) {
      auto r = co_await protocol::when_any(
          port_.request<Ball>(Ball(i), [i](const Ball& b) { return b.bounce == i; }),
          protocol::sleep(timer_, 1000));
      if (r.index() == 1) {
        std::printf("lost the ball at bounce %d\n", i);
        co_return;
      }
    }
    std::printf("rally over after %d bounces\n", rounds);
  }

  Positive<PingPong> port_ = require<PingPong>();
  Positive<timing::Timer> timer_ = require<timing::Timer>();
};

class Main : public ComponentDefinition {
 public:
  explicit Main(int rounds) {
    auto timer = create<timing::ThreadTimer>();
    auto ponger = create<Ponger>();
    auto pinger = create<Pinger>(rounds);
    connect(ponger.provided<PingPong>(), pinger.required<PingPong>());
    connect(timer.provided<timing::Timer>(), pinger.required<timing::Timer>());
  }
};

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 100000;
  auto runtime = Runtime::threaded();
  runtime->bootstrap<Main>(rounds);
  runtime->await_quiescence();
  return 0;
}
