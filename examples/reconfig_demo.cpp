// reconfig_demo — dynamic reconfiguration (§2.6) in action: a live pipeline
// Source -> Codec -> Sink keeps streaming while the Codec component is
// hot-swapped (rot13 -> xor cipher). The §2.6 protocol — hold channels,
// stop, re-plug, resume, retire — guarantees not a single event is lost,
// which the demo proves by counting.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "kompics/kompics.hpp"

using namespace kompics;

class Chunk : public Event {
 public:
  Chunk(int seq, char byte) : seq(seq), byte(byte) {}
  int seq;
  char byte;
};

class Stream : public PortType {
 public:
  Stream() {
    set_name("Stream");
    negative<Chunk>();
    positive<Chunk>();
  }
};

class Source : public ComponentDefinition {
 public:
  void emit(int seq, char byte) { trigger(make_event<Chunk>(seq, byte), out_); }
  Negative<Stream> out_ = provide<Stream>();
};

/// The reconfigurable stage. Mode is carried by an Init event so a
/// replacement can be dropped in with different behaviour — the "state
/// dump" of §2.6.
class Codec : public ComponentDefinition {
 public:
  struct Mode : Init {
    explicit Mode(char key) : key(key) {}
    char key;  // 0 => rot13, else xor with key
  };

  Codec() {
    subscribe<Mode>(control(), [this](const Mode& m) { key_ = m.key; });
    subscribe<Chunk>(in_, [this](const Chunk& c) {
      const char out = key_ == 0 ? rot13(c.byte) : static_cast<char>(c.byte ^ key_);
      ++processed_;
      trigger(make_event<Chunk>(c.seq, out), out_);
    });
  }

  static char rot13(char c) {
    if (c >= 'a' && c <= 'z') return static_cast<char>((c - 'a' + 13) % 26 + 'a');
    return c;
  }
  int processed() const { return processed_; }

 private:
  Positive<Stream> in_ = require<Stream>();
  Negative<Stream> out_ = provide<Stream>();
  char key_ = 0;
  int processed_ = 0;
};

class Sink : public ComponentDefinition {
 public:
  Sink() {
    subscribe<Chunk>(in_, [this](const Chunk&) { received.fetch_add(1); });
  }
  Positive<Stream> in_ = require<Stream>();
  std::atomic<int> received{0};
};

class PipelineMain : public ComponentDefinition {
 public:
  PipelineMain() {
    source = create<Source>();
    codec = create<Codec>();
    codec.control()->trigger(make_event<Codec::Mode>(0));
    sink = create<Sink>();
    connect(source.provided<Stream>(), codec.required<Stream>());
    connect(codec.provided<Stream>(), sink.required<Stream>());
  }

  void hot_swap(char new_key) {
    // §2.6: hold -> stop -> (Stopped) -> unplug/plug -> init+start -> resume
    // -> retire. One call; the protocol runs asynchronously and loses
    // nothing.
    codec = replace<Codec>(codec, make_event<Codec::Mode>(new_key));
  }

  Component source, codec, sink;
};

int main() {
  auto runtime = Runtime::threaded();
  auto main_c = runtime->bootstrap<PipelineMain>();
  auto& pipeline = main_c.definition_as<PipelineMain>();
  runtime->await_quiescence();

  std::printf("streaming through rot13 codec...\n");
  int seq = 0;
  auto& source = pipeline.source.definition_as<Source>();
  for (int i = 0; i < 1000; ++i) source.emit(seq++, static_cast<char>('a' + i % 26));

  std::printf("hot-swapping codec to xor-cipher WHILE the stream is in flight...\n");
  pipeline.hot_swap(0x5a);
  for (int i = 0; i < 1000; ++i) source.emit(seq++, static_cast<char>('a' + i % 26));

  runtime->await_quiescence();
  const int received = pipeline.sink.definition_as<Sink>().received.load();
  std::printf("emitted %d chunks across the swap; sink received %d — %s\n", seq, received,
              received == seq ? "ZERO LOSS" : "LOST EVENTS (bug!)");
  std::printf("new codec handled %d chunks\n",
              pipeline.codec.definition_as<Codec>().processed());
  return received == seq ? 0 : 1;
}
