// sim_debugging — the paper's "stepped debugging" workflow (§3, §4.2): a
// whole distributed system paused at exact virtual instants, its internal
// state inspected between steps, and the very same run replayed exactly by
// reusing the seed. What a debugger gives you for one process, the
// deterministic simulation gives you for a whole cluster.
//
// Usage: sim_debugging [seed]

#include <cstdio>
#include <cstdlib>

#include "cats/cats_simulator.hpp"
#include "sim/simulation.hpp"

using namespace kompics;
using namespace kompics::cats;
using namespace kompics::sim;

class Main : public ComponentDefinition {
 public:
  Main(SimulatorCore* core, SimNetworkHubPtr hub, CatsParams params) {
    simulator = create<CatsSimulator>(core, hub, params);
  }
  Component simulator;
};

static void inspect(CatsSimulator& cats, TimeMs now) {
  std::printf("t=%6lld ms | alive=%zu ready=%zu | per-node view:\n", (long long)now,
              cats.alive_count(), cats.ready_count());
  for (auto id : cats.alive_ids()) {
    auto& n = cats.node(id);
    auto& ring = n.ring.definition_as<CatsRing>();
    std::printf("   node %5llu: ready=%d pred=%s succ[0]=%s table=%zu store=%zu\n",
                (unsigned long long)id, (int)ring.ready(),
                ring.has_predecessor()
                    ? std::to_string(ring.predecessor().key >> 48).c_str()
                    : "-",
                ring.successors().empty()
                    ? "-"
                    : std::to_string(ring.successors()[0].key >> 48).c_str(),
                n.router.definition_as<OneHopRouter>().table_size(),
                n.abd.definition_as<ConsistentABD>().store_size());
  }
}

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  Simulation sim(Config{}, seed);
  auto hub = std::make_shared<SimNetworkHub>(&sim.core(), seed, LinkModel{1, 8, 0.0, false});
  auto main_c = sim.bootstrap<Main>(&sim.core(), hub, CatsParams{});
  sim.run_until(1);
  auto& cats = main_c.definition_as<Main>().simulator.definition_as<CatsSimulator>();

  std::printf("== stepping a 4-node CATS boot, pausing to inspect (seed %llu) ==\n",
              (unsigned long long)seed);
  for (std::uint64_t id : {11, 22, 33, 44}) cats.join(id);

  // Step in 500 ms slices of VIRTUAL time; between steps nothing moves —
  // the whole cluster is frozen and inspectable.
  for (int s = 1; s <= 6; ++s) {
    sim.run_until(s * 500);
    inspect(cats, sim.now());
  }

  std::printf("\n== a put, stepped through its quorum phases ==\n");
  cats.put(11, hash_to_ring("stepped"), Value{1, 2, 3});
  for (int s = 0; s < 4; ++s) {
    sim.run_until(sim.now() + 25);
    const auto& rec = cats.history().back();
    std::printf("t=%6lld ms | put %s\n", (long long)sim.now(),
                rec.responded >= 0 ? (rec.ok ? "COMPLETED ok" : "failed") : "in flight...");
    if (rec.responded >= 0) break;
  }

  std::printf("\n== determinism: events executed this run: %llu ==\n",
              (unsigned long long)sim.core().executed());
  std::printf("re-run with the same seed to step through the identical execution;\n"
              "change the seed for a different (but equally reproducible) run.\n");
  return 0;
}
