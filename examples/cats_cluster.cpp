// cats_cluster — the paper's "local, interactive, stress-test execution"
// mode (Fig. 12 right, §4.3): the same CATS node code as in simulation, but
// under the multi-core work-stealing scheduler in real time, with N nodes
// in one process connected by the LoopbackNetwork, a bootstrap server, a
// monitoring server, and an HTTP status page you can open in a browser
// while the run is active.
//
// Usage: cats_cluster [nodes=5] [ops=200] [http_port=0 (off)]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <thread>

#include "cats/bootstrap.hpp"
#include "cats/cats_client.hpp"
#include "cats/cats_node.hpp"
#include "cats/monitor.hpp"
#include "kompics/kompics.hpp"
#include "net/loopback.hpp"
#include "timing/thread_timer.hpp"
#include "web/cats_web.hpp"
#include "web/http_server.hpp"

using namespace kompics;
using namespace kompics::cats;
using net::Address;
using net::LoopbackHubPtr;
using net::LoopbackNetwork;

namespace {

CatsParams tuned_params() {
  CatsParams params;  // wall-clock friendly timings
  params.stabilization_period_ms = 100;
  params.shuffle_period_ms = 100;
  params.fd_ping_period_ms = 100;
  params.fd_initial_timeout_ms = 500;
  params.op_timeout_ms = 1000;
  params.keepalive_period_ms = 300;
  params.bootstrap_eviction_ms = 1500;
  params.monitor_period_ms = 300;
  return params;
}

/// One CATS machine: loopback network + thread timer + CatsNode + client.
class Machine : public ComponentDefinition {
 public:
  Machine(NodeRef self, LoopbackHubPtr hub, Address boot, Address monitor) {
    net = create<LoopbackNetwork>();
    trigger(make_event<LoopbackNetwork::Init>(self.addr, hub, /*codec=*/true,
                                              /*compress=*/false),
            net.control());
    timer = create<timing::ThreadTimer>();
    node = create<CatsNode>(self, boot, monitor, tuned_params());
    client = create<CatsClient>();
    connect(node.required<net::Network>(), net.provided<net::Network>());
    connect(node.required<timing::Timer>(), timer.provided<timing::Timer>());
    connect(node.provided<PutGet>(), client.required<PutGet>());
  }
  Component net, timer, node, client;
};

/// Bootstrap + monitoring servers on their own "machine" (paper Fig. 10).
class Servers : public ComponentDefinition {
 public:
  Servers(Address boot_addr, Address mon_addr, LoopbackHubPtr hub) {
    boot_net = create<LoopbackNetwork>();
    trigger(make_event<LoopbackNetwork::Init>(boot_addr, hub), boot_net.control());
    mon_net = create<LoopbackNetwork>();
    trigger(make_event<LoopbackNetwork::Init>(mon_addr, hub), mon_net.control());
    timer = create<timing::ThreadTimer>();
    boot_server = create<BootstrapServer>();
    trigger(make_event<BootstrapServer::Init>(boot_addr, tuned_params()),
            boot_server.control());
    mon_server = create<MonitorServer>();
    trigger(make_event<MonitorServer::Init>(mon_addr), mon_server.control());
    connect(boot_server.required<net::Network>(), boot_net.provided<net::Network>());
    connect(boot_server.required<timing::Timer>(), timer.provided<timing::Timer>());
    connect(mon_server.required<net::Network>(), mon_net.provided<net::Network>());
  }
  Component boot_net, mon_net, timer, boot_server, mon_server;
};

class ClusterMain : public ComponentDefinition {
 public:
  ClusterMain(int n, std::uint16_t http_port) {
    auto hub = std::make_shared<net::LoopbackHub>();
    const Address boot_addr = Address::node(1);
    const Address mon_addr = Address::node(2);
    servers = create<Servers>(boot_addr, mon_addr, hub);
    for (int i = 0; i < n; ++i) {
      const NodeRef self{CatsSimulatorStyleKey(i, n), Address::node(10 + i)};
      machines.push_back(create<Machine>(self, hub, boot_addr, mon_addr));
    }
    if (http_port != 0) {
      // Web front-end for the first node (paper §4.1): browse its status.
      auto& m0 = machines[0].definition_as<Machine>();
      web_app = create<web::CatsWebApp>();
      web_app.control()->trigger(make_event<web::CatsWebApp::Init>(
          NodeRef{CatsSimulatorStyleKey(0, n), Address::node(10)}, 500));
      http = create<web::HttpServer>();
      http.control()->trigger(
          make_event<web::HttpServer::Init>(Address::loopback(http_port)));
      connect(web_app.required<timing::Timer>(),
              m0.timer.provided<timing::Timer>());
      auto& node0 = m0.node.definition_as<CatsNode>();
      for (const Component& c :
           {node0.fd, node0.cyclon, node0.ring, node0.router, node0.abd}) {
        connect(c.provided<Status>(), web_app.required<Status>());
      }
      connect(web_app.provided<web::Web>(), http.required<web::Web>());
    }
  }

  static RingKey CatsSimulatorStyleKey(int i, int n) {
    return static_cast<RingKey>(i) * (~0ull / static_cast<RingKey>(n));
  }

  Component servers, web_app, http;
  std::vector<Component> machines;
};

}  // namespace

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 5;
  const int ops = argc > 2 ? std::atoi(argv[2]) : 200;
  const auto http_port = static_cast<std::uint16_t>(argc > 3 ? std::atoi(argv[3]) : 0);

  // Kernel telemetry via config gates: metrics + flight recorder on, causal
  // tracing sampled at 1% — the production-shaped setting the ≤3% overhead
  // budget is enforced against.
  Config cfg;
  cfg.set("telemetry.metrics", true);
  cfg.set("telemetry.trace_sampling", 0.01);
  cfg.set("telemetry.flight_recorder", true);
  auto runtime = Runtime::threaded(std::move(cfg));
  auto main_c = runtime->bootstrap<ClusterMain>(nodes, http_port);
  auto& cluster = main_c.definition_as<ClusterMain>();

  // Stagger the joins a little, then wait for ring convergence.
  std::printf("booting %d nodes...\n", nodes);
  for (int waited = 0; waited < 15000; waited += 50) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    int ready = 0;
    for (auto& m : cluster.machines) {
      ready += m.definition_as<Machine>().node.definition_as<CatsNode>().ready() ? 1 : 0;
    }
    if (ready == nodes) break;
  }
  int ready = 0;
  for (auto& m : cluster.machines) {
    ready += m.definition_as<Machine>().node.definition_as<CatsNode>().ready() ? 1 : 0;
  }
  std::printf("ring ready: %d/%d nodes\n", ready, nodes);

  // Closed-loop workload through the first node's client: put then get.
  auto& client = cluster.machines[0].definition_as<Machine>().client.definition_as<CatsClient>();
  std::atomic<int> ok{0}, bad{0};
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < ops; ++i) {
    const RingKey key = hash_to_ring("key-" + std::to_string(i % 32));
    std::promise<bool> done;
    auto fut = done.get_future();
    client.put(key, Value{static_cast<std::uint8_t>(i)}, [&](bool put_ok) {
      if (!put_ok) {
        bad.fetch_add(1);
        done.set_value(false);
        return;
      }
      client.get(key, [&](bool get_ok, bool found, const Value&) {
        (get_ok && found ? ok : bad).fetch_add(1);
        done.set_value(true);
      });
    });
    fut.wait();
  }
  const auto dt = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::printf("%d put+get round trips: %d ok, %d failed, %.1f us/op pair\n", ops, ok.load(),
              bad.load(), dt / ops * 1e6);

  // Give monitoring a beat, then print the paper's "global view".
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  auto& mon = cluster.servers.definition_as<Servers>().mon_server.definition_as<MonitorServer>();
  std::printf("%s", mon.render_text().c_str());

  if (http_port != 0) {
    std::printf("status page live at http://127.0.0.1:%u/ — ctrl-c to quit\n", http_port);
    std::printf("kernel telemetry:  http://127.0.0.1:%u/metrics (Prometheus), /trace (spans)\n",
                http_port);
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
  }
  return bad.load() == 0 ? 0 : 1;
}
