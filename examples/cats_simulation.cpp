// cats_simulation — the paper's whole-system simulation architecture
// (Fig. 12 left, §4.2/§4.4): the complete CATS key-value store executed in
// deterministic virtual time, driven by the experiment-scenario DSL:
//
//   boot:    1000 joins, exponential inter-arrival (mean 2 s), uniform ids
//   churn:   500 joins randomly interleaved with 500 failures (mean 500 ms)
//   lookups: 5000 operations, normal(50ms, 10ms) inter-arrival
//
// composed exactly like the paper's scenario1 (boot; churn 2 s after boot
// ends; lookups 3 s after churn starts; terminate 1 s after lookups end).
// The run is reproducible: pass the same seed, get the same run.
//
// Usage: cats_simulation [seed] [scale]
//   scale divides the event counts so a quick demo finishes in seconds
//   (default 10 => 100 joins / 50+50 churn / 500 lookups).

#include <cstdio>
#include <cstdlib>

#include "cats/cats_simulator.hpp"
#include "cats/linearizability.hpp"
#include "sim/scenario.hpp"
#include "sim/simulation.hpp"

using namespace kompics;
using namespace kompics::cats;
using namespace kompics::sim;

class SimulationMain : public ComponentDefinition {
 public:
  SimulationMain(SimulatorCore* core, SimNetworkHubPtr hub, CatsParams params) {
    simulator = create<CatsSimulator>(core, hub, params);
  }
  Component simulator;
};

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const std::uint64_t scale = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10;

  Simulation simulation(Config{}, seed);
  LinkModel model;
  model.min_latency = 1;
  model.max_latency = 20;  // emulated WAN jitter
  auto hub = std::make_shared<SimNetworkHub>(&simulation.core(), seed ^ 0xbeef, model);
  CatsParams params;
  params.replication_degree = 3;
  params.op_timeout_ms = 1500;
  params.op_max_retries = 4;
  // Fast failover: suspect dead neighbors quickly so lookups re-route.
  params.fd_ping_period_ms = 500;
  params.fd_initial_timeout_ms = 1500;
  params.fd_timeout_increment_ms = 500;
  params.stabilization_period_ms = 500;

  auto main_c = simulation.bootstrap<SimulationMain>(&simulation.core(), hub, params);
  simulation.run_until(1);
  auto& cats =
      main_c.definition_as<SimulationMain>().simulator.definition_as<CatsSimulator>();

  // ---- the paper's scenario1, in the C++ DSL -------------------------------
  Scenario scenario(seed);
  CatsSimulator* sys = &cats;

  auto boot = scenario.process("boot");
  boot->inter_arrival(Dist::exponential(2000))
      .raise(1000 / scale, [sys](std::uint64_t id) { sys->join(id); }, Dist::uniform_bits(16));

  auto churn = scenario.process("churn");
  churn->inter_arrival(Dist::exponential(500))
      .raise(500 / scale, [sys](std::uint64_t id) { sys->join(id); }, Dist::uniform_bits(16))
      .raise(500 / scale, [sys](std::uint64_t) {
        if (auto victim = sys->random_alive()) sys->fail(*victim);
      }, Dist::uniform_bits(16));

  auto lookups = scenario.process("lookups");
  lookups->inter_arrival(Dist::normal(50, 10))
      .raise(5000 / scale,
             [sys](std::uint64_t, std::uint64_t key) {
               if (auto node = sys->random_alive()) {
                 sys->lookup(*node, CatsSimulator::node_ring_key(key));
               }
             },
             Dist::uniform_bits(16), Dist::uniform_bits(14));

  scenario.start(boot);
  scenario.start_after_termination_of(2000, boot, churn);   // sequential composition
  scenario.start_after_start_of(3000, churn, lookups);      // parallel composition
  scenario.terminate_after_termination_of(1000, lookups);   // join synchronization

  std::printf("simulating: seed=%llu scale=1/%llu ...\n",
              static_cast<unsigned long long>(seed), static_cast<unsigned long long>(scale));
  const TimeMs end = scenario.run(simulation);
  // Drain in-flight operations.
  simulation.run_until(end + 30000);

  // ---- report ----------------------------------------------------------------
  std::size_t completed = 0, failed = 0, pending = 0;
  for (const auto& op : cats.history()) {
    if (op.responded < 0) {
      ++pending;
    } else if (op.ok) {
      ++completed;
    } else {
      ++failed;
    }
  }
  const auto& st = hub->stats();
  std::printf("virtual time     : %lld ms\n", static_cast<long long>(simulation.now()));
  std::printf("events executed  : %llu\n",
              static_cast<unsigned long long>(simulation.core().executed()));
  std::printf("alive nodes      : %zu (all ready: %s)\n", cats.alive_count(),
              cats.ready_count() == cats.alive_count() ? "yes" : "no");
  if (cats.ready_count() != cats.alive_count()) {
    for (auto id : cats.alive_ids()) {
      auto& n = cats.node(id);
      if (!n.ready()) {
        auto& ring = n.ring.definition_as<CatsRing>();
        std::fprintf(stderr, "  node %llu NOT ready: succs=%zu pred=%d\n",
                     (unsigned long long)id, ring.successors().size(),
                     (int)ring.has_predecessor());
      }
    }
  }
  std::printf("operations       : %zu total, %zu ok, %zu failed, %zu pending\n",
              cats.history().size(), completed, failed, pending);
  std::printf("network          : %llu sent, %llu delivered, %llu lost to partitions/churn\n",
              static_cast<unsigned long long>(st.sent),
              static_cast<unsigned long long>(st.delivered),
              static_cast<unsigned long long>(st.unroutable + st.lost + st.partitioned));

  const auto lin = check_history(cats.history());
  std::printf("linearizable     : %s %s\n", lin.linearizable ? "yes" : "NO",
              lin.explanation.c_str());
  return lin.linearizable ? 0 : 1;
}
