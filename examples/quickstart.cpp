// quickstart — the paper's running example (§2, Figs. 1-4): a
// FailureDetector component that requires Network and Timer abstractions,
// assembled with concrete providers by a Main composite. Here we run the
// real thing: two "machines" (in-process nodes connected by a
// LoopbackNetwork), each with a ThreadTimer and a PingFailureDetector.
// Machine A monitors machine B; we then kill B and watch A suspect it.

#include <chrono>
#include <cstdio>
#include <thread>

#include "cats/failure_detector.hpp"
#include "kompics/kompics.hpp"
#include "net/loopback.hpp"
#include "timing/thread_timer.hpp"

using namespace kompics;
using cats::PingFailureDetector;
using net::Address;
using net::LoopbackHub;
using net::LoopbackNetwork;

// One "machine": network + timer + failure detector, wired exactly like the
// paper's Fig. 4 Main component.
class Machine : public ComponentDefinition {
 public:
  Machine(Address self, net::LoopbackHubPtr hub) {
    net = create<LoopbackNetwork>();
    trigger(make_event<LoopbackNetwork::Init>(self, hub), net.control());
    timer = create<timing::ThreadTimer>();
    fd = create<PingFailureDetector>();
    cats::CatsParams params;
    params.fd_ping_period_ms = 100;       // wall-clock friendly settings
    params.fd_initial_timeout_ms = 400;
    trigger(make_event<PingFailureDetector::Init>(self, params), fd.control());

    // channel1 / channel2 of the paper's Fig. 2:
    connect(net.provided<net::Network>(), fd.required<net::Network>());
    connect(timer.provided<timing::Timer>(), fd.required<timing::Timer>());

    // Watch the detector's indications from the parent's scope (§2.3: ports
    // of immediate subcomponents are visible to the composite).
    subscribe<cats::Suspect>(fd.provided<cats::EventuallyPerfectFD>(),
                             [](const cats::Suspect& s) {
                               std::printf("SUSPECT  %s\n", s.node.to_node_string().c_str());
                             });
    subscribe<cats::Restore>(fd.provided<cats::EventuallyPerfectFD>(),
                             [](const cats::Restore& r) {
                               std::printf("RESTORE  %s\n", r.node.to_node_string().c_str());
                             });
  }

  void monitor(Address peer) {
    trigger(make_event<cats::MonitorNode>(peer), fd.provided<cats::EventuallyPerfectFD>());
  }

  Component net, timer, fd;
};

class Main : public ComponentDefinition {
 public:
  Main() {
    auto hub = std::make_shared<LoopbackHub>();
    a = create<Machine>(Address::node(1), hub);
    b = create<Machine>(Address::node(2), hub);
  }
  Component a, b;
};

int main() {
  auto runtime = Runtime::threaded();
  auto main_component = runtime->bootstrap<Main>();
  auto& m = main_component.definition_as<Main>();

  std::printf("machine A starts monitoring machine B...\n");
  m.a.definition_as<Machine>().monitor(Address::node(2));
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  std::printf("B is alive (no suspicion so far) — now crashing B.\n");

  // Dynamic destruction (§2.6): tear down machine B at runtime. Its
  // LoopbackNetwork detaches from the hub, so A's pings go unanswered.
  m.b.core()->destroy_tree();

  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  std::printf("done — A should have printed SUSPECT node-2 above.\n");
  return 0;
}
