#!/usr/bin/env bash
# Consistent-quorum partition sweep driver.
#
# One command to run the partial-partition regression tests plus the 50-seed
# scripted-schedule sweep (cats_quorum_sweep_test) whose every history is
# checked with the Wing & Gong linearizability checker. The seed list is
# fixed (1..50, baked into the test's INSTANTIATE_TEST_SUITE_P) so a run is
# reproducible bit-for-bit; pick individual seeds with --seed.
#
# Usage:
#   scripts/partition_sweep.sh [BUILD_DIR] [--seed N]...
#
#   BUILD_DIR   build tree containing tests/ binaries     (default: build)
#   --seed N    run only seed N of the sweep (repeatable); without it the
#               whole `partition` ctest label runs: both CatsPartition
#               regression tests and all 50 sweep seeds.
#
# Typical runs:
#   scripts/partition_sweep.sh                   # default tree, full sweep
#   scripts/partition_sweep.sh build-tsan        # same sweep under TSan
#   scripts/partition_sweep.sh build --seed 7 --seed 23   # two schedules

set -euo pipefail

BUILD_DIR="build"
SEEDS=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --seed)
      [[ $# -ge 2 ]] || { echo "error: --seed needs a value" >&2; exit 2; }
      SEEDS+=("$2")
      shift 2
      ;;
    -h|--help)
      sed -n '2,22p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *)
      BUILD_DIR="$1"
      shift
      ;;
  esac
done

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "error: build tree '$BUILD_DIR' not found (configure and build first:" >&2
  echo "  cmake --preset default && cmake --build --preset default)" >&2
  exit 1
fi

if [[ ${#SEEDS[@]} -gt 0 ]]; then
  SWEEP_BIN="$BUILD_DIR/tests/cats_quorum_sweep_test"
  if [[ ! -x "$SWEEP_BIN" ]]; then
    echo "error: $SWEEP_BIN not found (build the '$BUILD_DIR' tree first)" >&2
    exit 1
  fi
  FILTER=""
  for s in "${SEEDS[@]}"; do
    if [[ ! "$s" =~ ^[0-9]+$ ]] || (( s < 1 || s > 50 )); then
      echo "error: seed must be 1..50, got '$s'" >&2
      exit 2
    fi
    # gtest names parameterized cases by index; Range(1, 51) puts seed N at
    # index N-1.
    FILTER+="${FILTER:+:}Seeds/QuorumSweep.ScheduleIsLinearizable/$((s - 1))"
  done
  exec "$SWEEP_BIN" --gtest_filter="$FILTER"
fi

echo "[partition_sweep] running the 'partition' ctest label in $BUILD_DIR" >&2
exec ctest --test-dir "$BUILD_DIR" -L partition --output-on-failure "$@"
