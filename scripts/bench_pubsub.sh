#!/usr/bin/env bash
# Pub-sub hot-path benchmark driver.
#
# Runs bench_core_pubsub (dispatch/fan-out/channel-chain/trigger-burst
# microbenchmarks) and bench_a2_multicore (ping-pong round-trip scaling) from
# a build tree and emits a single JSON summary, optionally comparing against
# a previously captured baseline produced by this same script.
#
# Usage:
#   scripts/bench_pubsub.sh [BUILD_DIR] [OUT_JSON] [BASELINE_JSON]
#
#   BUILD_DIR      build tree containing bench/ binaries   (default: build)
#   OUT_JSON       output path                             (default: BENCH_pubsub.json)
#   BASELINE_JSON  earlier OUT_JSON to embed as "before"   (default: none)
#
# Typical PR workflow:
#   git stash / checkout the pre-change tree && build
#   scripts/bench_pubsub.sh build /tmp/pubsub_before.json
#   checkout the change && build
#   scripts/bench_pubsub.sh build BENCH_pubsub.json /tmp/pubsub_before.json

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_pubsub.json}"
BASELINE_JSON="${3:-}"
MIN_TIME="${BENCH_MIN_TIME:-0.2}"

PUBSUB_BIN="$BUILD_DIR/bench/bench_core_pubsub"
A2_BIN="$BUILD_DIR/bench/bench_a2_multicore"
for bin in "$PUBSUB_BIN" "$A2_BIN"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not found or not executable (build the '$BUILD_DIR' tree first)" >&2
    exit 1
  fi
done

tmp_pubsub="$(mktemp)"
tmp_a2="$(mktemp)"
trap 'rm -f "$tmp_pubsub" "$tmp_a2"' EXIT

echo "[bench_pubsub] running bench_core_pubsub (min_time=$MIN_TIME)..." >&2
"$PUBSUB_BIN" --benchmark_format=json --benchmark_min_time="$MIN_TIME" >"$tmp_pubsub"

echo "[bench_pubsub] running bench_a2_multicore..." >&2
"$A2_BIN" >"$tmp_a2"

python3 - "$tmp_pubsub" "$tmp_a2" "$OUT_JSON" "$BASELINE_JSON" <<'PY'
import json, re, subprocess, sys

pubsub_path, a2_path, out_path, baseline_path = sys.argv[1:5]

raw = json.load(open(pubsub_path))
micro = {}
for b in raw.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    micro[b["name"]] = {
        "real_time_ns": b.get("real_time"),
        "items_per_second": b.get("items_per_second"),
    }

a2 = {}
for line in open(a2_path):
    m = re.match(r"\s*(\d+)\s+(\d+)\s+[\d.]+x\s*$", line)
    if m:
        a2[f"workers_{m.group(1)}"] = {"round_trips_per_second": int(m.group(2))}

try:
    rev = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                         capture_output=True, text=True).stdout.strip() or None
except OSError:
    rev = None

result = {
    "schema": "kompics-bench-pubsub-v1",
    "context": {
        "date": raw.get("context", {}).get("date"),
        "host": raw.get("context", {}).get("host_name"),
        "num_cpus": raw.get("context", {}).get("num_cpus"),
        "git_rev": rev,
    },
    "bench_core_pubsub": micro,
    "bench_a2_multicore": a2,
}

if baseline_path:
    base = json.load(open(baseline_path))
    # Accept either a previous output of this script or a raw
    # google-benchmark JSON dump as the baseline.
    if "bench_core_pubsub" in base:
        base_micro = base["bench_core_pubsub"]
        base_a2 = base.get("bench_a2_multicore", {})
    else:
        base_micro = {
            b["name"]: {
                "real_time_ns": b.get("real_time"),
                "items_per_second": b.get("items_per_second"),
            }
            for b in base.get("benchmarks", [])
        }
        base_a2 = {}
    result["baseline"] = {
        "bench_core_pubsub": base_micro,
        "bench_a2_multicore": base_a2,
    }
    speedups = {}
    for name, cur in micro.items():
        old = base_micro.get(name)
        if old and old.get("items_per_second") and cur.get("items_per_second"):
            speedups[name] = round(cur["items_per_second"] / old["items_per_second"], 3)
    for name, cur in a2.items():
        old = base_a2.get(name)
        if old and old.get("round_trips_per_second"):
            speedups["a2_" + name] = round(
                cur["round_trips_per_second"] / old["round_trips_per_second"], 3)
    result["speedup_vs_baseline"] = speedups

json.dump(result, open(out_path, "w"), indent=2)
print(f"[bench_pubsub] wrote {out_path}")
for name in sorted(result.get("speedup_vs_baseline", {})):
    print(f"  {name}: {result['speedup_vs_baseline'][name]}x")
PY
