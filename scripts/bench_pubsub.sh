#!/usr/bin/env bash
# Pub-sub hot-path benchmark driver.
#
# Runs bench_core_pubsub (dispatch/fan-out/channel-chain/trigger-burst
# microbenchmarks) and bench_a2_multicore (ping-pong round-trip scaling) from
# a build tree and emits a single JSON summary, optionally comparing against
# a previously captured baseline produced by this same script.
#
# Usage:
#   scripts/bench_pubsub.sh [BUILD_DIR] [OUT_JSON] [BASELINE_JSON]
#
#   BUILD_DIR      build tree containing bench/ binaries   (default: build)
#   OUT_JSON       output path                             (default: BENCH_pubsub.json)
#   BASELINE_JSON  earlier OUT_JSON to embed as "before"   (default: none)
#
# Typical PR workflow:
#   git stash / checkout the pre-change tree && build
#   scripts/bench_pubsub.sh build /tmp/pubsub_before.json
#   checkout the change && build
#   scripts/bench_pubsub.sh build BENCH_pubsub.json /tmp/pubsub_before.json
#
# Telemetry overhead mode:
#   scripts/bench_pubsub.sh --telemetry [BUILD_DIR] [OUT_JSON] [BASELINE_JSON]
#
# Runs bench_core_pubsub three times — KOMPICS_TELEMETRY=off (compiled in,
# all gates cold), sampled (metrics + recorder + 1% trace sampling), and
# full (100% sampling) — and emits OUT_JSON (default: BENCH_telemetry.json)
# with per-benchmark overhead ratios. If BASELINE_JSON (a BENCH_pubsub.json
# captured on a tree *without* the telemetry hooks) is given, the disabled
# path is compared against it and the ≤3% overhead budget is enforced:
# exit 1 when the geometric-mean slowdown of "off" exceeds 3%.
#
# Coroutine-layer overhead mode:
#   scripts/bench_pubsub.sh --protocol [BUILD_DIR] [OUT_JSON] [BASELINE_JSON]
#
# Runs the BM_DispatchHandlers family and pairs each plain run against its
# BM_DispatchHandlersProto twin — identical dispatch path, but the subscriber
# carries a live coroutine frame (ProtocolHost + hidden resume port +
# correlation subscription). Both sides run in the same process on the same
# machine, so the ratio isolates the protocol layer's tax on non-coroutine
# dispatch; the ≤3% budget (geomean plain/proto ≤ 1.03) is enforced with
# exit 1. Writes OUT_JSON (default: BENCH_protocol.json). If BASELINE_JSON
# (a BENCH_pubsub.json from a pre-coroutine tree) is given, the plain run is
# also compared against it — informational, since absolute throughput is not
# comparable across machines.

set -euo pipefail

if [[ "${1:-}" == "--protocol" ]]; then
  shift
  BUILD_DIR="${1:-build}"
  OUT_JSON="${2:-BENCH_protocol.json}"
  BASELINE_JSON="${3:-}"
  MIN_TIME="${BENCH_MIN_TIME:-0.2}"
  PUBSUB_BIN="$BUILD_DIR/bench/bench_core_pubsub"
  if [[ ! -x "$PUBSUB_BIN" ]]; then
    echo "error: $PUBSUB_BIN not found (build the '$BUILD_DIR' tree first)" >&2
    exit 1
  fi
  tmp_json="$(mktemp)"
  trap 'rm -f "$tmp_json"' EXIT
  echo "[bench_pubsub] protocol-layer overhead (min_time=$MIN_TIME)..." >&2
  KOMPICS_TELEMETRY=off "$PUBSUB_BIN" --benchmark_format=json \
    --benchmark_filter='BM_DispatchHandlers(Proto)?/' \
    --benchmark_min_time="$MIN_TIME" >"$tmp_json"
  python3 - "$tmp_json" "$OUT_JSON" "$BASELINE_JSON" <<'PY'
import json, math, subprocess, sys

bench_path, out_path, baseline_path = sys.argv[1:4]

raw = json.load(open(bench_path))
runs = {
    b["name"]: {
        "real_time_ns": b.get("real_time"),
        "items_per_second": b.get("items_per_second"),
    }
    for b in raw.get("benchmarks", [])
    if b.get("run_type") != "aggregate"
}

plain = {n: r for n, r in runs.items() if n.startswith("BM_DispatchHandlers/")}
proto = {n.replace("Proto", "", 1): r for n, r in runs.items()
         if n.startswith("BM_DispatchHandlersProto/")}

overhead = {}
for name, p in plain.items():
    q = proto.get(name)
    if q and p.get("items_per_second") and q.get("items_per_second"):
        overhead[name] = round(p["items_per_second"] / q["items_per_second"], 3)
if not overhead:
    print("error: no plain/proto benchmark pairs found", file=sys.stderr)
    sys.exit(1)

def geomean(ratios):
    vals = [v for v in ratios.values() if v > 0]
    return round(math.exp(sum(math.log(v) for v in vals) / len(vals)), 4) if vals else None

gm = geomean(overhead)
ok = gm is not None and gm <= 1.03

try:
    rev = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                         capture_output=True, text=True).stdout.strip() or None
except OSError:
    rev = None

result = {
    "schema": "kompics-bench-protocol-v1",
    "context": {
        "date": raw.get("context", {}).get("date"),
        "host": raw.get("context", {}).get("host_name"),
        "num_cpus": raw.get("context", {}).get("num_cpus"),
        "git_rev": rev,
    },
    "plain": plain,
    "proto": {("BM_DispatchHandlersProto/" + n.split("/", 1)[1]): r
              for n, r in proto.items()},
    "overhead_proto_vs_plain": overhead,
    "geomean_proto_vs_plain": gm,
    "protocol_overhead_budget": {"limit": 1.03, "ok": ok},
}

if baseline_path:
    base = json.load(open(baseline_path))
    base_micro = base.get("bench_core_pubsub", {})
    vs_base = {}
    for name, cur in plain.items():
        old = base_micro.get(name)
        if old and old.get("items_per_second") and cur.get("items_per_second"):
            vs_base[name] = round(old["items_per_second"] / cur["items_per_second"], 3)
    result["overhead_plain_vs_baseline"] = vs_base
    result["geomean_plain_vs_baseline"] = geomean(vs_base)

json.dump(result, open(out_path, "w"), indent=2)
print(f"[bench_pubsub] wrote {out_path}")
for name in sorted(overhead):
    print(f"  {name}: {overhead[name]}x proto/plain")
print(f"  geomean proto/plain: {gm}x (budget 1.03x: {'OK' if ok else 'EXCEEDED'})")
if result.get("geomean_plain_vs_baseline") is not None:
    print(f"  geomean vs checked-in baseline: {result['geomean_plain_vs_baseline']}x "
          f"(informational; baseline machine differs)")
sys.exit(0 if ok else 1)
PY
  exit $?
fi

if [[ "${1:-}" == "--telemetry" ]]; then
  shift
  BUILD_DIR="${1:-build}"
  OUT_JSON="${2:-BENCH_telemetry.json}"
  BASELINE_JSON="${3:-}"
  MIN_TIME="${BENCH_MIN_TIME:-0.2}"
  PUBSUB_BIN="$BUILD_DIR/bench/bench_core_pubsub"
  if [[ ! -x "$PUBSUB_BIN" ]]; then
    echo "error: $PUBSUB_BIN not found (build the '$BUILD_DIR' tree first)" >&2
    exit 1
  fi
  tmp_off="$(mktemp)"; tmp_sampled="$(mktemp)"; tmp_full="$(mktemp)"
  trap 'rm -f "$tmp_off" "$tmp_sampled" "$tmp_full"' EXIT
  for mode in off sampled full; do
    echo "[bench_pubsub] telemetry=$mode (min_time=$MIN_TIME)..." >&2
    out_var="tmp_$mode"
    KOMPICS_TELEMETRY="$mode" "$PUBSUB_BIN" --benchmark_format=json \
      --benchmark_min_time="$MIN_TIME" >"${!out_var}"
  done
  python3 - "$tmp_off" "$tmp_sampled" "$tmp_full" "$OUT_JSON" "$BASELINE_JSON" <<'PY'
import json, math, subprocess, sys

off_path, sampled_path, full_path, out_path, baseline_path = sys.argv[1:6]

def load(path):
    raw = json.load(open(path))
    return raw, {
        b["name"]: {
            "real_time_ns": b.get("real_time"),
            "items_per_second": b.get("items_per_second"),
        }
        for b in raw.get("benchmarks", [])
        if b.get("run_type") != "aggregate"
    }

raw_off, off = load(off_path)
_, sampled = load(sampled_path)
_, full = load(full_path)

def overhead(base, other):
    """Per-benchmark slowdown of `other` relative to `base` (1.0 = equal)."""
    out = {}
    for name, b in base.items():
        o = other.get(name)
        if o and b.get("items_per_second") and o.get("items_per_second"):
            out[name] = round(b["items_per_second"] / o["items_per_second"], 3)
    return out

def geomean(ratios):
    vals = [v for v in ratios.values() if v > 0]
    return round(math.exp(sum(math.log(v) for v in vals) / len(vals)), 4) if vals else None

try:
    rev = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                         capture_output=True, text=True).stdout.strip() or None
except OSError:
    rev = None

result = {
    "schema": "kompics-bench-telemetry-v1",
    "context": {
        "date": raw_off.get("context", {}).get("date"),
        "host": raw_off.get("context", {}).get("host_name"),
        "num_cpus": raw_off.get("context", {}).get("num_cpus"),
        "git_rev": rev,
    },
    "modes": {"off": off, "sampled": sampled, "full": full},
    "overhead_sampled_vs_off": overhead(off, sampled),
    "overhead_full_vs_off": overhead(off, full),
}
result["geomean_sampled_vs_off"] = geomean(result["overhead_sampled_vs_off"])
result["geomean_full_vs_off"] = geomean(result["overhead_full_vs_off"])

budget_ok = None
if baseline_path:
    base = json.load(open(baseline_path))
    base_micro = base.get("bench_core_pubsub") or {
        b["name"]: {
            "real_time_ns": b.get("real_time"),
            "items_per_second": b.get("items_per_second"),
        }
        for b in base.get("benchmarks", [])
    }
    result["overhead_off_vs_baseline"] = overhead(base_micro, off)
    gm = geomean(result["overhead_off_vs_baseline"])
    result["geomean_off_vs_baseline"] = gm
    budget_ok = gm is not None and gm <= 1.03
    result["disabled_overhead_budget"] = {"limit": 1.03, "ok": budget_ok}

json.dump(result, open(out_path, "w"), indent=2)
print(f"[bench_pubsub] wrote {out_path}")
print(f"  geomean sampled/off: {result['geomean_sampled_vs_off']}x")
print(f"  geomean full/off:    {result['geomean_full_vs_off']}x")
if budget_ok is not None:
    print(f"  geomean off/baseline: {result['geomean_off_vs_baseline']}x "
          f"(budget 1.03x: {'OK' if budget_ok else 'EXCEEDED'})")
    sys.exit(0 if budget_ok else 1)
PY
  exit $?
fi

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_pubsub.json}"
BASELINE_JSON="${3:-}"
MIN_TIME="${BENCH_MIN_TIME:-0.2}"

PUBSUB_BIN="$BUILD_DIR/bench/bench_core_pubsub"
A2_BIN="$BUILD_DIR/bench/bench_a2_multicore"
for bin in "$PUBSUB_BIN" "$A2_BIN"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not found or not executable (build the '$BUILD_DIR' tree first)" >&2
    exit 1
  fi
done

tmp_pubsub="$(mktemp)"
tmp_a2="$(mktemp)"
trap 'rm -f "$tmp_pubsub" "$tmp_a2"' EXIT

echo "[bench_pubsub] running bench_core_pubsub (min_time=$MIN_TIME)..." >&2
"$PUBSUB_BIN" --benchmark_format=json --benchmark_min_time="$MIN_TIME" >"$tmp_pubsub"

echo "[bench_pubsub] running bench_a2_multicore..." >&2
"$A2_BIN" >"$tmp_a2"

python3 - "$tmp_pubsub" "$tmp_a2" "$OUT_JSON" "$BASELINE_JSON" <<'PY'
import json, re, subprocess, sys

pubsub_path, a2_path, out_path, baseline_path = sys.argv[1:5]

raw = json.load(open(pubsub_path))
micro = {}
for b in raw.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    micro[b["name"]] = {
        "real_time_ns": b.get("real_time"),
        "items_per_second": b.get("items_per_second"),
    }

a2 = {}
for line in open(a2_path):
    m = re.match(r"\s*(\d+)\s+(\d+)\s+[\d.]+x\s*$", line)
    if m:
        a2[f"workers_{m.group(1)}"] = {"round_trips_per_second": int(m.group(2))}

try:
    rev = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                         capture_output=True, text=True).stdout.strip() or None
except OSError:
    rev = None

result = {
    "schema": "kompics-bench-pubsub-v1",
    "context": {
        "date": raw.get("context", {}).get("date"),
        "host": raw.get("context", {}).get("host_name"),
        "num_cpus": raw.get("context", {}).get("num_cpus"),
        "git_rev": rev,
    },
    "bench_core_pubsub": micro,
    "bench_a2_multicore": a2,
}

if baseline_path:
    base = json.load(open(baseline_path))
    # Accept either a previous output of this script or a raw
    # google-benchmark JSON dump as the baseline.
    if "bench_core_pubsub" in base:
        base_micro = base["bench_core_pubsub"]
        base_a2 = base.get("bench_a2_multicore", {})
    else:
        base_micro = {
            b["name"]: {
                "real_time_ns": b.get("real_time"),
                "items_per_second": b.get("items_per_second"),
            }
            for b in base.get("benchmarks", [])
        }
        base_a2 = {}
    result["baseline"] = {
        "bench_core_pubsub": base_micro,
        "bench_a2_multicore": base_a2,
    }
    speedups = {}
    for name, cur in micro.items():
        old = base_micro.get(name)
        if old and old.get("items_per_second") and cur.get("items_per_second"):
            speedups[name] = round(cur["items_per_second"] / old["items_per_second"], 3)
    for name, cur in a2.items():
        old = base_a2.get(name)
        if old and old.get("round_trips_per_second"):
            speedups["a2_" + name] = round(
                cur["round_trips_per_second"] / old["round_trips_per_second"], 3)
    result["speedup_vs_baseline"] = speedups

json.dump(result, open(out_path, "w"), indent=2)
print(f"[bench_pubsub] wrote {out_path}")
for name in sorted(result.get("speedup_vs_baseline", {})):
    print(f"  {name}: {result['speedup_vs_baseline'][name]}x")
PY
