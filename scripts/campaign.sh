#!/usr/bin/env bash
# Simulation campaign driver (replaces the old partition_sweep.sh).
#
# One command to run the seed-sweep campaign: every seed expands to a
# generated fault schedule (partial partitions, churn, timer skew, message
# loss/duplication/reordering), replays it on the deterministic simulator,
# and checks the history with the Wing & Gong linearizability checker plus
# the per-component invariants. Failing seeds are shrunk to a minimal
# replayable schedule artifact and the exact repro command is printed.
#
# Usage:
#   scripts/campaign.sh [BUILD_DIR] [--seeds N] [--jobs J] [--seed N] [ARGS...]
#
#   BUILD_DIR   build tree containing the campaign_runner binary (default: build)
#   --seeds N   sweep seeds 1..N                        (default: 50, the
#               same smoke preset the `campaign` ctest label runs on PRs)
#   --seed N    run a single seed verbosely (add --shrink to minimize)
#   --jobs J    parallel worker processes               (default: nproc)
#   anything else is passed through to campaign_runner (--start, --out,
#   --replay FILE, --shrink, --print-schedule, ...)
#
# Typical runs:
#   scripts/campaign.sh                          # 50-seed smoke sweep
#   scripts/campaign.sh build --seeds 2000       # the nightly-sized sweep
#   scripts/campaign.sh build-tsan --seeds 50 --jobs 1   # under TSan
#   scripts/campaign.sh build --seed 17 --shrink # one failing seed, minimized
#   scripts/campaign.sh build --replay campaign-out/seed17-min.schedule

set -euo pipefail

BUILD_DIR="build"
ARGS=()
HAVE_MODE=0
HAVE_JOBS=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --seeds|--seed|--replay)
      HAVE_MODE=1
      ARGS+=("$1" "$2")
      shift 2
      ;;
    --jobs)
      HAVE_JOBS=1
      ARGS+=("$1" "$2")
      shift 2
      ;;
    --start|--out)
      ARGS+=("$1" "$2")
      shift 2
      ;;
    -h|--help)
      sed -n '2,26p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    --*)
      ARGS+=("$1")
      shift
      ;;
    *)
      BUILD_DIR="$1"
      shift
      ;;
  esac
done

RUNNER="$BUILD_DIR/src/testkit/campaign_runner"
if [[ ! -x "$RUNNER" ]]; then
  echo "error: $RUNNER not found (configure and build first:" >&2
  echo "  cmake --preset default && cmake --build --preset default)" >&2
  exit 1
fi

if [[ $HAVE_MODE -eq 0 ]]; then
  ARGS+=(--seeds 50)
fi
if [[ $HAVE_JOBS -eq 0 ]]; then
  ARGS+=(--jobs "$(nproc 2>/dev/null || echo 4)")
fi

exec "$RUNNER" "${ARGS[@]}"
