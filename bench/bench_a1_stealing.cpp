// A1 — work-stealing ablation (paper §3): "Workers may run out of ready
// components to execute, in which case they engage in work stealing ...
// From our experiments, batching shows a considerable performance
// improvement over stealing small numbers of ready components."
//
// Workload: a single spreader component fans events out to many worker
// components, so every ready-token is born on one worker's queue — the
// other workers make progress only by stealing. Configurations:
//   no-steal      — stealing disabled (upper bound on imbalance cost)
//   steal-1       — steal one component per steal
//   steal-half    — the paper's batch of half the victim's queue
//   steal-quarter — intermediate batch size

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>

#include "kompics/kompics.hpp"
#include "kompics/work_stealing_scheduler.hpp"

using namespace kompics;

namespace {

class Job : public Event {};

class JobPort : public PortType {
 public:
  JobPort() {
    set_name("JobPort");
    negative<Job>();
    positive<Job>();
  }
};

class Crunch : public ComponentDefinition {
 public:
  explicit Crunch(std::atomic<long>* done) : done_(done) {
    subscribe<Job>(in_, [this](const Job&) {
      volatile double x = 1.0;
      for (int i = 0; i < 2000; ++i) x = x * 1.0000001 + 0.25;
      (void)x;
      done_->fetch_add(1, std::memory_order_relaxed);
    });
  }
  Positive<JobPort> in_ = require<JobPort>();

 private:
  std::atomic<long>* done_;
};

class Spreader : public ComponentDefinition {
 public:
  void burst() { trigger(make_event<Job>(), out_); }
  Negative<JobPort> out_ = provide<JobPort>();
};

class Main : public ComponentDefinition {
 public:
  Main(int workers, std::atomic<long>* done) {
    spreader = create<Spreader>();
    for (int i = 0; i < workers; ++i) {
      sinks.push_back(create<Crunch>(done));
      connect(spreader.provided<JobPort>(), sinks.back().required<JobPort>());
    }
  }
  Component spreader;
  std::vector<Component> sinks;
};

struct Result {
  double jobs_per_second;
  std::uint64_t steals;
  std::uint64_t stolen;
};

Result run_config(bool stealing, std::size_t divisor, int components, int bursts) {
  std::atomic<long> done{0};
  WorkStealingScheduler::Options opts;
  opts.workers = 4;
  opts.stealing = stealing;
  opts.steal_divisor = divisor;
  // steal-1 emulation: divisor so large that size/divisor == 0 -> min_steal.
  auto scheduler = std::make_unique<WorkStealingScheduler>(opts);
  auto* sched = scheduler.get();
  Runtime rt(Config{}, std::move(scheduler), std::make_unique<WallClock>(), 1);
  auto main = rt.bootstrap<Main>(components, &done);
  auto& def = main.definition_as<Main>();
  rt.await_quiescence();

  const long total = static_cast<long>(components) * bursts;
  const auto t0 = std::chrono::steady_clock::now();
  for (int b = 0; b < bursts; ++b) {
    def.spreader.definition_as<Spreader>().burst();
    rt.await_quiescence();
  }
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const auto stats = sched->stats();
  return Result{total / dt, stats.steals, stats.stolen_components};
}

}  // namespace

int main(int argc, char** argv) {
  const int bursts = argc > 1 ? std::atoi(argv[1]) : 300;
  constexpr int kComponents = 64;
  std::printf("=== A1: work-stealing ablation (4 workers, %d components, fan-out bursts) ===\n",
              kComponents);
  std::printf("%-14s %14s %10s %14s %12s\n", "Config", "Jobs/s", "Steals", "StolenComps",
              "Batch/steal");

  struct Config {
    const char* name;
    bool stealing;
    std::size_t divisor;
  };
  const Config configs[] = {
      {"no-steal", false, 2},
      {"steal-1", true, 1u << 30},  // size/divisor == 0 => min_steal = 1
      {"steal-quarter", true, 4},
      {"steal-half", true, 2},  // the paper's choice
  };
  double base = 0;
  for (const auto& c : configs) {
    const Result r = run_config(c.stealing, c.divisor, kComponents, bursts);
    if (base == 0) base = r.jobs_per_second;
    std::printf("%-14s %14.0f %10llu %14llu %12.1f   (%.2fx vs no-steal)\n", c.name,
                r.jobs_per_second, static_cast<unsigned long long>(r.steals),
                static_cast<unsigned long long>(r.stolen),
                r.steals != 0 ? static_cast<double>(r.stolen) / r.steals : 0.0,
                r.jobs_per_second / base);
    std::fflush(stdout);
  }
  std::printf("\nPaper claim: steal-half batching considerably outperforms stealing\n"
              "single components. On multi-core hosts stealing also beats no-steal on\n"
              "imbalanced load; on a single-core host (no parallelism to win) the\n"
              "batching ordering steal-half > steal-quarter > steal-1 still shows,\n"
              "because batching amortizes the per-steal synchronization.\n");
  return 0;
}
