// A4 — network-stack microcosts: the serialize / compress / decompress /
// deserialize stages that E1's end-to-end latency decomposes into (the
// paper's "4x serialization, 4x compression, ..." accounting, §4.1).
// google-benchmark over message payload sizes 64 B .. 64 KiB.

#include <benchmark/benchmark.h>

#include <random>

#include "net/buffer.hpp"
#include "net/compression.hpp"
#include "net/serialization.hpp"

using namespace kompics::net;

namespace {

class PayloadMsg : public Message {
 public:
  PayloadMsg(Address s, Address d, Bytes payload) : Message(s, d), payload(std::move(payload)) {}
  Bytes payload;
};

KOMPICS_REGISTER_MESSAGE(
    PayloadMsg, 9500,
    [](const Message& m, BufferWriter& w) {
      w.bytes(static_cast<const PayloadMsg&>(m).payload);
    },
    [](BufferReader& r, Address src, Address dst) -> MessagePtr {
      return std::make_shared<const PayloadMsg>(src, dst, r.bytes());
    });

Bytes make_payload(std::size_t n, bool compressible) {
  Bytes b(n);
  std::mt19937_64 rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = compressible ? static_cast<std::uint8_t>(i % 17) : static_cast<std::uint8_t>(rng());
  }
  return b;
}

void BM_Serialize(benchmark::State& state) {
  PayloadMsg msg(Address::node(1), Address::node(2),
                 make_payload(static_cast<std::size_t>(state.range(0)), true));
  for (auto _ : state) {
    Bytes wire;
    SerializationRegistry::instance().serialize(msg, wire);
    benchmark::DoNotOptimize(wire);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Serialize)->Range(64, 64 << 10);

void BM_Deserialize(benchmark::State& state) {
  PayloadMsg msg(Address::node(1), Address::node(2),
                 make_payload(static_cast<std::size_t>(state.range(0)), true));
  Bytes wire;
  SerializationRegistry::instance().serialize(msg, wire);
  for (auto _ : state) {
    auto out = SerializationRegistry::instance().deserialize(wire);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Deserialize)->Range(64, 64 << 10);

void BM_CompressCompressible(benchmark::State& state) {
  const Bytes in = make_payload(static_cast<std::size_t>(state.range(0)), true);
  std::size_t packed_size = 0;
  for (auto _ : state) {
    Bytes out;
    packed_size = kz::compress(in, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.counters["ratio"] =
      static_cast<double>(in.size()) / static_cast<double>(packed_size);
}
BENCHMARK(BM_CompressCompressible)->Range(64, 64 << 10);

void BM_CompressRandom(benchmark::State& state) {
  const Bytes in = make_payload(static_cast<std::size_t>(state.range(0)), false);
  for (auto _ : state) {
    Bytes out;
    kz::compress(in, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CompressRandom)->Range(64, 64 << 10);

void BM_Decompress(benchmark::State& state) {
  const Bytes in = make_payload(static_cast<std::size_t>(state.range(0)), true);
  Bytes packed;
  kz::compress(in, packed);
  for (auto _ : state) {
    Bytes out = kz::decompress(packed);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Decompress)->Range(64, 64 << 10);

// The full E1 per-message path: serialize -> compress -> decompress ->
// deserialize (one of the four message legs of a quorum round trip).
void BM_FullWirePath(benchmark::State& state) {
  PayloadMsg msg(Address::node(1), Address::node(2),
                 make_payload(static_cast<std::size_t>(state.range(0)), true));
  for (auto _ : state) {
    Bytes wire;
    SerializationRegistry::instance().serialize(msg, wire);
    Bytes packed;
    kz::compress(wire, packed);
    Bytes plain = kz::decompress(packed);
    auto out = SerializationRegistry::instance().deserialize(plain);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullWirePath)->Range(64, 64 << 10);

}  // namespace

BENCHMARK_MAIN();
