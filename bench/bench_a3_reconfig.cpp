// A3 — cost of dynamic reconfiguration (§2.6): hot-swap a relay component
// under live traffic and measure (a) the wall-clock duration of the full
// hold -> Stopped -> re-plug -> resume -> retire protocol, (b) per-event
// overhead of a held channel (queue + flush vs direct forward), and
// (c) verified zero event loss across many swaps.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <vector>

#include "kompics/kompics.hpp"

using namespace kompics;

namespace {

class Num : public Event {
 public:
  explicit Num(int n) : n(n) {}
  int n;
};

class NumPort : public PortType {
 public:
  NumPort() {
    set_name("NumPort");
    negative<Num>();
    positive<Num>();
  }
};

class Source : public ComponentDefinition {
 public:
  void emit(int from, int count) {
    for (int i = 0; i < count; ++i) trigger(make_event<Num>(from + i), out_);
  }
  Negative<NumPort> out_ = provide<NumPort>();
};

class Relay : public ComponentDefinition {
 public:
  struct Gen : Init {
    explicit Gen(int g) : generation(g) {}
    int generation;
  };
  Relay() {
    subscribe<Gen>(control(), [this](const Gen& g) { generation_ = g.generation; });
    subscribe<Num>(in_, [this](const Num& m) { trigger(make_event<Num>(m.n), out_); });
  }
  int generation() const { return generation_; }

 private:
  Positive<NumPort> in_ = require<NumPort>();
  Negative<NumPort> out_ = provide<NumPort>();
  int generation_ = 0;
};

class Sink : public ComponentDefinition {
 public:
  Sink() {
    subscribe<Num>(in_, [this](const Num&) { received.fetch_add(1); });
  }
  Positive<NumPort> in_ = require<NumPort>();
  std::atomic<long> received{0};
};

class Main : public ComponentDefinition {
 public:
  Main() {
    source = create<Source>();
    relay = create<Relay>();
    relay.control()->trigger(make_event<Relay::Gen>(0));
    sink = create<Sink>();
    connect(source.provided<NumPort>(), relay.required<NumPort>());
    connect(relay.provided<NumPort>(), sink.required<NumPort>());
  }
  void swap(int generation) { relay = replace<Relay>(relay, make_event<Relay::Gen>(generation)); }
  Component source, relay, sink;
};

}  // namespace

int main(int argc, char** argv) {
  const int swaps = argc > 1 ? std::atoi(argv[1]) : 200;
  const int burst = 500;

  auto rt = Runtime::threaded(Config{}, 4, 1);
  auto main_c = rt->bootstrap<Main>();
  auto& pipeline = main_c.definition_as<Main>();
  rt->await_quiescence();

  std::printf("=== A3: dynamic reconfiguration under live traffic ===\n");

  // Baseline: relay throughput without any swaps.
  {
    const auto t0 = std::chrono::steady_clock::now();
    for (int b = 0; b < swaps; ++b) {
      pipeline.source.definition_as<Source>().emit(b * burst, burst);
      rt->await_quiescence();
    }
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    std::printf("baseline      : %8.2f us per %d-event burst (no swaps)\n", dt / swaps * 1e6,
                burst);
  }

  // Swap under traffic: emit a burst, immediately hot-swap, wait for the
  // protocol (counted work) to finish; measure the whole cycle.
  long emitted = static_cast<long>(swaps) * burst;
  pipeline.sink.definition_as<Sink>().received.store(0);
  std::vector<double> swap_us;
  for (int s = 0; s < swaps; ++s) {
    pipeline.source.definition_as<Source>().emit(s * burst, burst);
    const auto t0 = std::chrono::steady_clock::now();
    pipeline.swap(s + 1);
    rt->await_quiescence();  // includes flushing held channels + retirement
    swap_us.push_back(std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
  }
  double mean = std::accumulate(swap_us.begin(), swap_us.end(), 0.0) / swap_us.size();
  std::sort(swap_us.begin(), swap_us.end());
  std::printf("swap+flush    : %8.2f us mean, %8.2f us p50, %8.2f us p99 "
              "(swap of a relay mid-%d-event burst)\n",
              mean, swap_us[swap_us.size() / 2], swap_us[swap_us.size() * 99 / 100], burst);

  const long received = pipeline.sink.definition_as<Sink>().received.load();
  std::printf("event loss    : emitted=%ld received=%ld -> %s\n", emitted, received,
              emitted == received ? "ZERO LOSS across all swaps" : "LOSS (bug!)");
  std::printf("final relay generation: %d (every swap completed)\n",
              pipeline.relay.definition_as<Relay>().generation());
  return emitted == received ? 0 : 1;
}
