// A2 — multi-core scalability of the execution model (paper §3: "by
// designing components as reactive state machines and scheduling them using
// a pool of worker threads, we provide a simple programming model that
// leverages multi-core machines without any extra programming effort").
//
// Workload: K independent ping-pong component pairs exchanging events with
// a small CPU cost per handler. Sweeping the worker count shows the
// speedup; one table row per configuration.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "kompics/kompics.hpp"
#include "kompics/work_stealing_scheduler.hpp"

using namespace kompics;

namespace {

class Ball : public Event {
  KOMPICS_EVENT(Ball, Event);
};

class PingPongPort : public PortType {
 public:
  PingPongPort() {
    set_name("PingPong");
    negative<Ball>();
    positive<Ball>();
  }
};

constexpr int kWorkLoop = 150;  // CPU per handler: enough to matter

inline void spin_work() {
  volatile double x = 1.0;
  for (int i = 0; i < kWorkLoop; ++i) x = x * 1.0000001 + 0.25;
  (void)x;
}

class Ponger : public ComponentDefinition {
 public:
  Ponger() {
    subscribe<Ball>(port_, [this](const Ball&) {
      spin_work();
      trigger(make_event<Ball>(), port_);
    });
  }
  Negative<PingPongPort> port_ = provide<PingPongPort>();
};

class Pinger : public ComponentDefinition {
 public:
  explicit Pinger(std::atomic<long>* counter) : counter_(counter) {
    subscribe<Ball>(port_, [this](const Ball&) {
      spin_work();
      counter_->fetch_add(1, std::memory_order_relaxed);
      if (!stop_.load(std::memory_order_relaxed)) trigger(make_event<Ball>(), port_);
    });
  }
  void serve() { trigger(make_event<Ball>(), port_); }
  void stop() { stop_.store(true, std::memory_order_relaxed); }
  Positive<PingPongPort> port_ = require<PingPongPort>();

 private:
  std::atomic<long>* counter_;
  std::atomic<bool> stop_{false};
};

class Main : public ComponentDefinition {
 public:
  Main(int pairs, std::atomic<long>* counter) {
    for (int i = 0; i < pairs; ++i) {
      pongers.push_back(create<Ponger>());
      pingers.push_back(create<Pinger>(counter));
      connect(pongers.back().provided<PingPongPort>(),
              pingers.back().required<PingPongPort>());
    }
  }
  std::vector<Component> pongers, pingers;
};

double run_config(std::size_t workers, int pairs, int duration_ms) {
  std::atomic<long> counter{0};
  WorkStealingScheduler::Options opts;
  opts.workers = workers;
  Runtime rt(Config{}, std::make_unique<WorkStealingScheduler>(opts),
             std::make_unique<WallClock>(), 1);
  auto main = rt.bootstrap<Main>(pairs, &counter);
  auto& def = main.definition_as<Main>();
  rt.await_quiescence();

  for (auto& p : def.pingers) p.definition_as<Pinger>().serve();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  const long n = counter.load();
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  for (auto& p : def.pingers) p.definition_as<Pinger>().stop();
  rt.await_quiescence();
  return n / dt;
}

}  // namespace

int main(int argc, char** argv) {
  const int duration_ms = argc > 1 ? std::atoi(argv[1]) : 1000;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("=== A2: multi-core scaling of the component scheduler ===\n");
  std::printf("(%u hardware threads; 64 ping-pong pairs; round trips/s)\n\n", hw);
  std::printf("%8s %16s %10s\n", "Workers", "RoundTrips/s", "Speedup");

  double base = 0;
  for (std::size_t w : {1u, 2u, 4u, 8u}) {
    if (w > hw * 2) break;
    const double rps = run_config(w, 64, duration_ms);
    if (base == 0) base = rps;
    std::printf("%8zu %16.0f %9.2fx\n", w, rps, rps / base);
    std::fflush(stdout);
  }
  std::printf("\nPaper shape: throughput scales with cores up to the hardware limit;\n"
              "on a single-core host extra workers can only add scheduling overhead.\n");
  return 0;
}
