// F6/F7 — microbenchmarks of the publish-subscribe event dissemination
// semantics of Figures 6 and 7: trigger-to-handler dispatch cost, cost per
// additional handler on one port (Fig. 7: all compatible handlers run
// sequentially), fan-out cost per additional subscriber component (Fig. 6:
// all channels forward), and channel-chain (composite pass-through) depth.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>

#include "kompics/kompics.hpp"
#include "kompics/protocol.hpp"

using namespace kompics;

namespace {

// KOMPICS_TELEMETRY=off|sampled|full selects the telemetry mode for every
// runtime the benchmarks create (scripts/bench_pubsub.sh drives this to
// produce BENCH_telemetry.json). Default off: the overhead-budget baseline.
void apply_telemetry_mode(Runtime& rt) {
  const char* mode = std::getenv("KOMPICS_TELEMETRY");
  if (mode == nullptr || std::strcmp(mode, "off") == 0) return;
  if (std::strcmp(mode, "sampled") == 0) {
    rt.telemetry().enable_all(/*sample=*/0.01);
  } else if (std::strcmp(mode, "full") == 0) {
    rt.telemetry().enable_all(/*sample=*/1.0);
  }
}

class Tick : public Event {
  KOMPICS_EVENT(Tick, Event);

 public:
  explicit Tick(int n) : n(n) {}
  int n;
};

class TickPort : public PortType {
 public:
  TickPort() {
    set_name("TickPort");
    negative<Tick>();
    positive<Tick>();
  }
};

class Counter : public ComponentDefinition {
 public:
  explicit Counter(int handlers) {
    for (int i = 0; i < handlers; ++i) {
      subscribe<Tick>(in_, [this](const Tick&) { ++count; });
    }
  }
  Positive<TickPort> in_ = require<TickPort>();
  long count = 0;
};

class ParkPort : public PortType {
 public:
  ParkPort() {
    set_name("ParkPort");
    negative<Tick>();
    positive<Tick>();
  }
};

// Counter with the coroutine protocol layer live on the component: a parked
// frame holds a correlation subscription on a second (never-connected) port,
// so the ProtocolHost, hidden resume port and frame bookkeeping all exist —
// but the measured dispatch path is byte-for-byte the plain subscribe path.
// BM_DispatchHandlersProto vs BM_DispatchHandlers is the coroutine layer's
// tax on non-coroutine dispatch (budget: <= 3%, scripts/bench_pubsub.sh
// --protocol enforces it).
class ProtoCounter : public ComponentDefinition {
 public:
  explicit ProtoCounter(int handlers) {
    for (int i = 0; i < handlers; ++i) {
      subscribe<Tick>(in_, [this](const Tick&) { ++count; });
    }
  }
  protocol::Proto<void> park_forever() {
    co_await park_.next<Tick>([](const Tick& t) { return t.n < 0; });
  }
  Positive<TickPort> in_ = require<TickPort>();
  Positive<ParkPort> park_ = require<ParkPort>();
  long count = 0;
};

class Emitter : public ComponentDefinition {
 public:
  void emit(int n) { trigger(make_event<Tick>(n), out_); }
  Negative<TickPort> out_ = provide<TickPort>();
};

class FanMain : public ComponentDefinition {
 public:
  FanMain(int subscribers, int handlers_each) {
    emitter = create<Emitter>();
    for (int i = 0; i < subscribers; ++i) {
      sinks.push_back(create<Counter>(handlers_each));
      connect(emitter.provided<TickPort>(), sinks.back().required<TickPort>());
    }
  }
  Component emitter;
  std::vector<Component> sinks;
};

class ProtoFanMain : public ComponentDefinition {
 public:
  explicit ProtoFanMain(int handlers) {
    emitter = create<Emitter>();
    sink = create<ProtoCounter>(handlers);
    connect(emitter.provided<TickPort>(), sink.required<TickPort>());
  }
  Component emitter, sink;
};

class Relay : public ComponentDefinition {
 public:
  Relay() {
    subscribe<Tick>(in_, [this](const Tick& t) { trigger(make_event<Tick>(t.n), out_); });
  }
  Positive<TickPort> in_ = require<TickPort>();
  Negative<TickPort> out_ = provide<TickPort>();
};

class ChainMain : public ComponentDefinition {
 public:
  explicit ChainMain(int depth) {
    emitter = create<Emitter>();
    Component prev;
    for (int i = 0; i < depth; ++i) {
      relays.push_back(create<Relay>());
      if (i == 0) {
        connect(emitter.provided<TickPort>(), relays.back().required<TickPort>());
      } else {
        connect(relays[relays.size() - 2].provided<TickPort>(),
                relays.back().required<TickPort>());
      }
    }
    sink = create<Counter>(1);
    connect(relays.back().provided<TickPort>(), sink.required<TickPort>());
  }
  Component emitter, sink;
  std::vector<Component> relays;
};

// One subscriber, varying handler count (Fig. 7 semantics).
void BM_DispatchHandlers(benchmark::State& state) {
  auto rt = Runtime::threaded(Config{}, 2, 1);
  apply_telemetry_mode(*rt);
  auto main = rt->bootstrap<FanMain>(1, static_cast<int>(state.range(0)));
  rt->await_quiescence();
  auto& emitter = main.definition_as<FanMain>().emitter.definition_as<Emitter>();
  int n = 0;
  for (auto _ : state) {
    emitter.emit(n++);
    rt->await_quiescence();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DispatchHandlers)->Arg(1)->Arg(2)->Arg(4)->Arg(16);

// The same dispatch as BM_DispatchHandlers, but the subscriber carries a
// live coroutine layer: a parked frame (correlation subscription + resume
// machinery on the hidden protocol port) that the measured events never
// touch. The plain/proto items_per_second ratio is the coroutine layer's
// overhead on non-coroutine dispatch.
void BM_DispatchHandlersProto(benchmark::State& state) {
  auto rt = Runtime::threaded(Config{}, 2, 1);
  apply_telemetry_mode(*rt);
  auto main = rt->bootstrap<ProtoFanMain>(static_cast<int>(state.range(0)));
  rt->await_quiescence();
  auto& world = main.definition_as<ProtoFanMain>();
  auto& emitter = world.emitter.definition_as<Emitter>();
  protocol::spawn(world.sink.definition_as<ProtoCounter>().park_forever());
  rt->await_quiescence();
  int n = 0;
  for (auto _ : state) {
    emitter.emit(n++);
    rt->await_quiescence();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DispatchHandlersProto)->Arg(1)->Arg(2)->Arg(4)->Arg(16);

// Fan-out to N subscriber components via N channels (Fig. 6 semantics).
void BM_FanOutSubscribers(benchmark::State& state) {
  auto rt = Runtime::threaded(Config{}, 4, 1);
  apply_telemetry_mode(*rt);
  auto main = rt->bootstrap<FanMain>(static_cast<int>(state.range(0)), 1);
  rt->await_quiescence();
  auto& emitter = main.definition_as<FanMain>().emitter.definition_as<Emitter>();
  int n = 0;
  for (auto _ : state) {
    emitter.emit(n++);
    rt->await_quiescence();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FanOutSubscribers)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// Composite pass-through pipeline: per-hop cost through channels.
void BM_ChannelChain(benchmark::State& state) {
  auto rt = Runtime::threaded(Config{}, 2, 1);
  apply_telemetry_mode(*rt);
  auto main = rt->bootstrap<ChainMain>(static_cast<int>(state.range(0)));
  rt->await_quiescence();
  auto& emitter = main.definition_as<ChainMain>().emitter.definition_as<Emitter>();
  int n = 0;
  for (auto _ : state) {
    emitter.emit(n++);
    rt->await_quiescence();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChannelChain)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

// Raw trigger throughput into one busy component (queueing fast path):
// emit a burst of B events, then drain once.
void BM_TriggerBurst(benchmark::State& state) {
  auto rt = Runtime::threaded(Config{}, 2, 1);
  apply_telemetry_mode(*rt);
  auto main = rt->bootstrap<FanMain>(1, 1);
  rt->await_quiescence();
  auto& emitter = main.definition_as<FanMain>().emitter.definition_as<Emitter>();
  const int burst = static_cast<int>(state.range(0));
  int n = 0;
  for (auto _ : state) {
    for (int i = 0; i < burst; ++i) emitter.emit(n++);
    rt->await_quiescence();
  }
  state.SetItemsProcessed(state.iterations() * burst);
}
BENCHMARK(BM_TriggerBurst)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
