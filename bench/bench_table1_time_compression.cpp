// T1 — reproduces Table 1 of the paper: "Time compression effects observed
// when simulating the system for 4275 seconds of simulated time."
//
//   Peers   Time compression          (paper, on their hardware)
//   64      475x
//   128     237.5x
//   256     118.75x
//   ...     (halves as peers double)
//   8192    2.01x
//
// Method: boot N CATS peers into one simulated world (gentle join spacing),
// let the ring converge, then run the full protocol stack — failure
// detectors, ring stabilization, Cyclon gossip, plus a fixed-rate lookup
// stream — for a span of virtual time, and report wall-clock vs. simulated
// time for that span. Absolute ratios depend on hardware and on the
// events-per-peer rate (ours: ~26 events/peer/s with 1 Hz maintenance); the
// paper's *shape* — compression halves as peers double, i.e. simulation
// cost is linear in system size — is the reproduced result.
//
// Default: 64..1024 peers over 427.5 s of virtual time (1/10 of the paper's
// span keeps the default harness fast; the ratio is duration-invariant).
// KOMPICS_T1_FULL=1 runs the paper's 4275 s and adds 2048/4096/8192 peers.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cats/cats_simulator.hpp"
#include "sim/scenario.hpp"
#include "sim/simulation.hpp"

using namespace kompics;
using namespace kompics::cats;
using namespace kompics::sim;

namespace {

class SimMain : public ComponentDefinition {
 public:
  SimMain(SimulatorCore* core, SimNetworkHubPtr hub, CatsParams params) {
    simulator = create<CatsSimulator>(core, hub, params);
  }
  Component simulator;
};

struct Row {
  int peers;
  double sim_seconds;
  double wall_seconds;
  std::uint64_t events;
  std::size_t ready;
};

Row run_one(int peers, TimeMs span_ms) {
  Simulation sim(Config{}, 42);
  auto hub = std::make_shared<SimNetworkHub>(&sim.core(), 7, LinkModel{1, 10, 0.0, false});
  CatsParams params;  // paper-like 1 Hz maintenance per protocol
  auto main_c = sim.bootstrap<SimMain>(&sim.core(), hub, params);
  sim.run_until(1);
  auto& cats = main_c.definition_as<SimMain>().simulator.definition_as<CatsSimulator>();

  // Boot with evenly spread ring ids and gentle spacing, then settle.
  for (int i = 0; i < peers; ++i) {
    cats.join(static_cast<std::uint64_t>(i) * 65536 / static_cast<std::uint64_t>(peers));
    sim.run_until(sim.now() + 20);
  }
  sim.run_until(sim.now() + 20000);

  // Measured span: steady-state maintenance plus a fixed-rate lookup stream
  // (20 lookups/s), exactly the "long-lived system" regime of Table 1.
  CatsSimulator* sys = &cats;
  Scenario scenario(42);
  auto lookups = scenario.process("lookups");
  lookups->inter_arrival(Dist::exponential(50))
      .raise(static_cast<std::size_t>(span_ms / 50),
             [sys](std::uint64_t, std::uint64_t key) {
               if (auto node = sys->random_alive()) {
                 sys->lookup(*node, CatsSimulator::node_ring_key(key));
               }
             },
             Dist::uniform_bits(16), Dist::uniform_bits(16));
  scenario.start(lookups);
  scenario.install(sim);

  const std::uint64_t events_before = sim.core().executed();
  const TimeMs span_start = sim.now();
  const auto t0 = std::chrono::steady_clock::now();
  sim.run_until(span_start + span_ms);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  return Row{peers, static_cast<double>(sim.now() - span_start) / 1000.0, wall,
             sim.core().executed() - events_before, cats.ready_count()};
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = std::getenv("KOMPICS_T1_FULL") != nullptr ||
                    (argc > 1 && std::string(argv[1]) == "--full");
  const TimeMs span_ms = full ? 4'275'000 : 427'500;
  std::vector<int> peer_counts{64, 128, 256, 512, 1024};
  if (full) {
    peer_counts.push_back(2048);
    peer_counts.push_back(4096);
    peer_counts.push_back(8192);
  }

  std::printf("=== T1: Table 1 — simulated-time compression (virtual span %.1f s) ===\n",
              static_cast<double>(span_ms) / 1000.0);
  std::printf("%8s %12s %10s %16s %14s %10s\n", "Peers", "SimTime(s)", "Wall(s)",
              "Compression(x)", "Events", "Ev/peer/s");
  double previous_ratio = 0.0;
  for (int peers : peer_counts) {
    const Row r = run_one(peers, span_ms);
    const double ratio = r.sim_seconds / r.wall_seconds;
    std::printf("%8d %12.1f %10.2f %16.2f %14llu %10.1f", r.peers, r.sim_seconds,
                r.wall_seconds, ratio, static_cast<unsigned long long>(r.events),
                static_cast<double>(r.events) / r.peers / r.sim_seconds);
    if (previous_ratio > 0.0) {
      std::printf("   (x%.2f vs prev; paper: x0.5)", ratio / previous_ratio);
    }
    std::printf("\n");
    std::fflush(stdout);
    previous_ratio = ratio;
  }
  std::printf("\nPaper shape check: compression halves per doubling of peers (linear\n"
              "simulation cost in system size). Absolute values are hardware-bound.\n");
  return 0;
}
