// E1 — reproduces the paper's §4.1 latency claim: "Using the web interface
// to interact with CATS (configured with a replication degree of 5) on the
// local-area network resulted in sub-millisecond end-to-end latencies for
// get and put operations. This includes the LAN latency (two message
// round-trips, so 4 one-way latencies), message serialization (4x),
// encryption (4x), decryption (4x), deserialization (4x), and Kompics
// runtime overheads for message dispatching and execution."
//
// Substitution (DESIGN.md §2.7): the LAN is replaced by the in-process
// LoopbackNetwork in codec-exercising mode — every message is serialized,
// kz-compressed, decompressed, and deserialized, i.e. the same per-message
// CPU path the paper counts (compression standing in for encryption).
// 6 nodes, replication degree 5, 1 KB values, closed loop.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <vector>

#include "cats/bootstrap.hpp"
#include "cats/cats_client.hpp"
#include "cats/cats_node.hpp"
#include "kompics/kompics.hpp"
#include "net/loopback.hpp"
#include "timing/thread_timer.hpp"

using namespace kompics;
using namespace kompics::cats;
using net::Address;
using net::LoopbackHubPtr;
using net::LoopbackNetwork;

namespace {

CatsParams bench_params() {
  CatsParams params;
  params.replication_degree = 5;  // the paper's configuration
  params.stabilization_period_ms = 200;
  params.shuffle_period_ms = 200;
  params.fd_ping_period_ms = 200;
  params.fd_initial_timeout_ms = 1000;
  params.op_timeout_ms = 2000;
  params.keepalive_period_ms = 500;
  params.bootstrap_eviction_ms = 5000;
  return params;
}

class Machine : public ComponentDefinition {
 public:
  Machine(NodeRef self, LoopbackHubPtr hub, Address boot) {
    net = create<LoopbackNetwork>();
    trigger(make_event<LoopbackNetwork::Init>(self.addr, hub, /*codec=*/true,
                                              /*compress=*/true),
            net.control());
    timer = create<timing::ThreadTimer>();
    node = create<CatsNode>(self, boot, Address{}, bench_params());
    client = create<CatsClient>();
    connect(node.required<net::Network>(), net.provided<net::Network>());
    connect(node.required<timing::Timer>(), timer.provided<timing::Timer>());
    connect(node.provided<PutGet>(), client.required<PutGet>());
  }
  Component net, timer, node, client;
};

class BenchMain : public ComponentDefinition {
 public:
  explicit BenchMain(int n) {
    auto hub = std::make_shared<net::LoopbackHub>();
    const Address boot_addr = Address::node(1);
    boot_net = create<LoopbackNetwork>();
    trigger(make_event<LoopbackNetwork::Init>(boot_addr, hub), boot_net.control());
    boot_timer = create<timing::ThreadTimer>();
    boot_server = create<BootstrapServer>();
    trigger(make_event<BootstrapServer::Init>(boot_addr, bench_params()),
            boot_server.control());
    connect(boot_server.required<net::Network>(), boot_net.provided<net::Network>());
    connect(boot_server.required<timing::Timer>(), boot_timer.provided<timing::Timer>());
    for (int i = 0; i < n; ++i) {
      const NodeRef self{static_cast<RingKey>(i) * (~0ull / static_cast<RingKey>(n)),
                         Address::node(10 + i)};
      machines.push_back(create<Machine>(self, hub, boot_addr));
    }
  }
  Component boot_net, boot_timer, boot_server;
  std::vector<Component> machines;
};

double percentile(std::vector<double>& v, double p) {
  std::sort(v.begin(), v.end());
  return v[std::min(v.size() - 1, static_cast<std::size_t>(p * v.size()))];
}

void report(const char* label, std::vector<double>& us) {
  double sum = 0;
  for (double x : us) sum += x;
  std::printf("%-4s  n=%zu  mean=%8.1f us  p50=%8.1f us  p99=%8.1f us  max=%8.1f us  %s\n",
              label, us.size(), sum / us.size(), percentile(us, 0.50), percentile(us, 0.99),
              percentile(us, 0.999), percentile(us, 0.50) < 1000.0
                                         ? "[sub-millisecond median: paper claim holds]"
                                         : "[median above 1 ms]");
}

}  // namespace

int main(int argc, char** argv) {
  const int ops = argc > 1 ? std::atoi(argv[1]) : 2000;
  constexpr int kNodes = 6;

  std::printf("=== E1: end-to-end get/put latency, replication degree 5, 1 KB values ===\n");
  std::printf("(in-process loopback network with full serialize+compress+decompress+\n"
              " deserialize per message — the paper's 4x/4x/4x/4x path)\n");

  auto runtime = Runtime::threaded();
  auto main_c = runtime->bootstrap<BenchMain>(kNodes);
  auto& bench = main_c.definition_as<BenchMain>();

  // Wait for ring convergence.
  for (int waited = 0; waited < 20000; waited += 50) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    int ready = 0;
    for (auto& m : bench.machines) {
      ready += m.definition_as<Machine>().node.definition_as<CatsNode>().ready() ? 1 : 0;
    }
    if (ready == kNodes) break;
  }

  auto& client = bench.machines[0].definition_as<Machine>().client.definition_as<CatsClient>();
  const Value value(1024, 0x7e);  // 1 KB

  // Warm up (connections, stores, allocator).
  for (int i = 0; i < 100; ++i) {
    std::promise<void> done;
    client.put(hash_to_ring("warm-" + std::to_string(i)), value,
               [&](bool) { done.set_value(); });
    done.get_future().wait();
  }

  std::vector<double> put_us, get_us;
  put_us.reserve(static_cast<std::size_t>(ops));
  get_us.reserve(static_cast<std::size_t>(ops));
  int failures = 0;
  for (int i = 0; i < ops; ++i) {
    const RingKey key = hash_to_ring("bench-" + std::to_string(i % 64));
    {
      std::promise<bool> done;
      const auto t0 = std::chrono::steady_clock::now();
      client.put(key, value, [&](bool ok) { done.set_value(ok); });
      const bool ok = done.get_future().get();
      const auto dt = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      if (ok) {
        put_us.push_back(dt);
      } else {
        ++failures;
      }
    }
    {
      std::promise<bool> done;
      const auto t0 = std::chrono::steady_clock::now();
      client.get(key, [&](bool ok, bool, const Value&) { done.set_value(ok); });
      const bool ok = done.get_future().get();
      const auto dt = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      if (ok) {
        get_us.push_back(dt);
      } else {
        ++failures;
      }
    }
  }

  report("put", put_us);
  report("get", get_us);
  if (failures != 0) std::printf("failures: %d\n", failures);
  return 0;
}
