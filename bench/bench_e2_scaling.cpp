// E2 — reproduces the paper's §4.1 scaling claim shape: "for read-intensive
// workloads, reading 1KB values, CATS scaled on Rackspace to 96 machines
// providing just over 100,000 reads/sec."
//
// Substitution (DESIGN.md §2.7): Rackspace machines become in-process CATS
// nodes over the LoopbackNetwork (fast path — the cluster's aggregate
// throughput question is about coordination cost, not wire bytes). We sweep
// the node count and drive a read-intensive open-ish workload from multiple
// closed-loop clients with pipelining. The reproduced *shape*: aggregate
// reads/s grows with node count until the host's cores saturate — i.e.,
// adding storage nodes does not collapse throughput (coordination is O(1)
// per read regardless of system size).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <vector>

#include "cats/bootstrap.hpp"
#include "cats/cats_client.hpp"
#include "cats/cats_node.hpp"
#include "kompics/kompics.hpp"
#include "net/loopback.hpp"
#include "timing/thread_timer.hpp"

using namespace kompics;
using namespace kompics::cats;
using net::Address;
using net::LoopbackHubPtr;
using net::LoopbackNetwork;

namespace {

CatsParams bench_params() {
  CatsParams params;
  params.replication_degree = 3;
  params.stabilization_period_ms = 500;
  params.shuffle_period_ms = 500;
  params.fd_ping_period_ms = 500;
  params.fd_initial_timeout_ms = 2000;
  params.op_timeout_ms = 4000;
  params.keepalive_period_ms = 1000;
  params.bootstrap_eviction_ms = 10000;
  return params;
}

class Machine : public ComponentDefinition {
 public:
  Machine(NodeRef self, LoopbackHubPtr hub, Address boot) {
    net = create<LoopbackNetwork>();
    trigger(make_event<LoopbackNetwork::Init>(self.addr, hub), net.control());
    timer = create<timing::ThreadTimer>();
    node = create<CatsNode>(self, boot, Address{}, bench_params());
    client = create<CatsClient>();
    connect(node.required<net::Network>(), net.provided<net::Network>());
    connect(node.required<timing::Timer>(), timer.provided<timing::Timer>());
    connect(node.provided<PutGet>(), client.required<PutGet>());
  }
  Component net, timer, node, client;
};

class BenchMain : public ComponentDefinition {
 public:
  explicit BenchMain(int n) {
    auto hub = std::make_shared<net::LoopbackHub>();
    const Address boot_addr = Address::node(1);
    boot_net = create<LoopbackNetwork>();
    trigger(make_event<LoopbackNetwork::Init>(boot_addr, hub), boot_net.control());
    boot_timer = create<timing::ThreadTimer>();
    boot_server = create<BootstrapServer>();
    trigger(make_event<BootstrapServer::Init>(boot_addr, bench_params()),
            boot_server.control());
    connect(boot_server.required<net::Network>(), boot_net.provided<net::Network>());
    connect(boot_server.required<timing::Timer>(), boot_timer.provided<timing::Timer>());
    for (int i = 0; i < n; ++i) {
      const NodeRef self{static_cast<RingKey>(i) * (~0ull / static_cast<RingKey>(n)),
                         Address::node(10 + i)};
      machines.push_back(create<Machine>(self, hub, boot_addr));
    }
  }
  Component boot_net, boot_timer, boot_server;
  std::vector<Component> machines;
};

/// Runs `total` reads spread across all nodes' clients with `window`
/// outstanding requests per client; returns aggregate reads/s. All shared
/// state is heap-allocated and captured by value: late callbacks from the
/// final window must stay safe after the measurement completes.
double run_reads(BenchMain& bench, int total, int window) {
  struct Shared {
    std::atomic<int> completed{0};
    std::atomic<int> issued{0};
    std::atomic<int> inflight{0};
    std::mutex mu;
    std::condition_variable cv;
    std::function<void(BenchMain*, int)> issue;
  };
  auto shared = std::make_shared<Shared>();
  const int n = static_cast<int>(bench.machines.size());

  const auto t0 = std::chrono::steady_clock::now();
  shared->issue = [shared, total](BenchMain* b, int machine) {
    const int my = shared->issued.fetch_add(1);
    if (my >= total) return;
    shared->inflight.fetch_add(1);
    auto& client = b->machines[static_cast<std::size_t>(machine)]
                       .definition_as<Machine>()
                       .client.definition_as<CatsClient>();
    client.get(hash_to_ring("data-" + std::to_string(my % 512)),
               [shared, b, machine](bool, bool, const Value&) {
                 shared->completed.fetch_add(1);
                 shared->inflight.fetch_sub(1);
                 shared->issue(b, machine);
                 std::lock_guard<std::mutex> g(shared->mu);
                 shared->cv.notify_all();
               });
  };
  for (int m = 0; m < n; ++m) {
    for (int w = 0; w < window; ++w) shared->issue(&bench, m);
  }
  double dt = 0;
  {
    std::unique_lock<std::mutex> lock(shared->mu);
    shared->cv.wait(lock, [&] { return shared->completed.load() >= total; });
    dt = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    // Drain the tail so no callback outlives this round's BenchMain use.
    shared->cv.wait(lock, [&] { return shared->inflight.load() == 0; });
  }
  shared->issue = nullptr;  // break the self-reference cycle
  return total / dt;
}

}  // namespace

int main(int argc, char** argv) {
  const int reads_per_point = argc > 1 ? std::atoi(argv[1]) : 8000;
  std::printf("=== E2: read-intensive scaling, 1 KB values (reads/s vs node count) ===\n");
  std::printf("%8s %14s %16s\n", "Nodes", "Reads/s", "vs previous");

  double prev = 0;
  for (int n : {3, 6, 12, 24, 48, 96}) {
    auto runtime = Runtime::threaded();
    auto main_c = runtime->bootstrap<BenchMain>(n);
    auto& bench = main_c.definition_as<BenchMain>();
    for (int waited = 0; waited < 30000; waited += 100) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      int ready = 0;
      for (auto& m : bench.machines) {
        ready += m.definition_as<Machine>().node.definition_as<CatsNode>().ready() ? 1 : 0;
      }
      if (ready == n) break;
    }
    // Seed 512 keys of 1 KB.
    auto& seeder =
        bench.machines[0].definition_as<Machine>().client.definition_as<CatsClient>();
    std::atomic<int> seeded{0};
    for (int k = 0; k < 512; ++k) {
      seeder.put(hash_to_ring("data-" + std::to_string(k)), Value(1024, 0x11),
                 [&](bool) { seeded.fetch_add(1); });
    }
    while (seeded.load() < 512) std::this_thread::sleep_for(std::chrono::milliseconds(5));

    run_reads(bench, reads_per_point / 4, 4);  // warm-up
    const double rps = run_reads(bench, reads_per_point, 8);
    std::printf("%8d %14.0f %15.2fx\n", n, rps, prev > 0 ? rps / prev : 1.0);
    std::fflush(stdout);
    prev = rps;
    runtime->shutdown();
  }
  std::printf("\nPaper shape: on their 96-machine testbed aggregate reads/s grew with\n"
              "node count (~100k reads/s at 96). In one process the ceiling is the\n"
              "host's cores: with many cores throughput grows until they saturate; on\n"
              "few cores it stays bounded while per-node maintenance grows, so the\n"
              "meaningful check is graceful degradation (no collapse) out to 96 nodes.\n");
  return 0;
}
