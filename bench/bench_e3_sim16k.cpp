// E3 — reproduces the paper's §4 claim: "we were able to simulate a system
// of 16384 nodes in a single 64-bit JVM with a heap size of 4GB. The ratio
// between the real time taken to run the simulation and the simulated time
// was roughly 1."
//
// We boot N CATS nodes (full protocol stack each) into one process-resident
// simulated world and report wall time, virtual time, the compression
// ratio, events/s, and peak RSS. Default N=4096 keeps the default harness
// quick; KOMPICS_E3_FULL=1 (or --full) runs the paper's 16384.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cats/cats_simulator.hpp"
#include "sim/simulation.hpp"

using namespace kompics;
using namespace kompics::cats;
using namespace kompics::sim;

namespace {

class SimMain : public ComponentDefinition {
 public:
  SimMain(SimulatorCore* core, SimNetworkHubPtr hub, CatsParams params) {
    simulator = create<CatsSimulator>(core, hub, params);
  }
  Component simulator;
};

long rss_mib() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  long kb = -1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      std::sscanf(line + 6, "%ld", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb / 1024;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = std::getenv("KOMPICS_E3_FULL") != nullptr ||
                    (argc > 1 && std::string(argv[1]) == "--full");
  const int peers = full ? 16384 : 4096;

  std::printf("=== E3: whole-system simulation scale (%d CATS nodes in one process) ===\n",
              peers);

  Simulation sim(Config{}, 1);
  auto hub = std::make_shared<SimNetworkHub>(&sim.core(), 3, LinkModel{1, 10, 0.0, false});
  auto main_c = sim.bootstrap<SimMain>(&sim.core(), hub, CatsParams{});
  sim.run_until(1);
  auto& cats = main_c.definition_as<SimMain>().simulator.definition_as<CatsSimulator>();

  const auto t0 = std::chrono::steady_clock::now();
  // Boot: one join per 5 virtual ms, ids spread over the 16-bit id space.
  for (int i = 0; i < peers; ++i) {
    cats.join(static_cast<std::uint64_t>(i) * 65536 / static_cast<std::uint64_t>(peers));
    sim.run_until(sim.now() + 5);
  }
  const double boot_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::printf("boot: %d joins in %.1f s wall (%lld ms virtual), RSS %ld MiB\n", peers,
              boot_wall, static_cast<long long>(sim.now()), rss_mib());
  std::fflush(stdout);

  // Steady-state span: 60 virtual seconds of full-stack maintenance.
  const TimeMs span = 60'000;
  const std::uint64_t e0 = sim.core().executed();
  const TimeMs v0 = sim.now();
  const auto t1 = std::chrono::steady_clock::now();
  sim.run_until(v0 + span);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();
  const std::uint64_t events = sim.core().executed() - e0;

  std::printf("steady state: %.1f s virtual in %.1f s wall -> compression %.2fx\n",
              static_cast<double>(span) / 1000.0, wall,
              static_cast<double>(span) / 1000.0 / wall);
  std::printf("events: %llu (%.0f events/s wall, %.1f events/peer/s virtual)\n",
              static_cast<unsigned long long>(events), events / wall,
              static_cast<double>(events) / peers / (static_cast<double>(span) / 1000.0));
  std::printf("nodes ready: %zu/%zu, peak RSS %ld MiB (paper: 16384 nodes in a 4 GB heap,\n"
              "compression ~1x at that scale)\n",
              cats.ready_count(), cats.alive_count(), rss_mib());
  return 0;
}
