file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_netstack.dir/bench_a4_netstack.cpp.o"
  "CMakeFiles/bench_a4_netstack.dir/bench_a4_netstack.cpp.o.d"
  "bench_a4_netstack"
  "bench_a4_netstack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_netstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
