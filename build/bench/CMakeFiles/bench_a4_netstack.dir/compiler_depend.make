# Empty compiler generated dependencies file for bench_a4_netstack.
# This may be replaced when dependencies are built.
