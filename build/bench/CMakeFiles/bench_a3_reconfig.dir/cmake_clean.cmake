file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_reconfig.dir/bench_a3_reconfig.cpp.o"
  "CMakeFiles/bench_a3_reconfig.dir/bench_a3_reconfig.cpp.o.d"
  "bench_a3_reconfig"
  "bench_a3_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
