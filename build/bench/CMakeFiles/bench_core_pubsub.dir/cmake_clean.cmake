file(REMOVE_RECURSE
  "CMakeFiles/bench_core_pubsub.dir/bench_core_pubsub.cpp.o"
  "CMakeFiles/bench_core_pubsub.dir/bench_core_pubsub.cpp.o.d"
  "bench_core_pubsub"
  "bench_core_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_core_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
