# Empty compiler generated dependencies file for bench_core_pubsub.
# This may be replaced when dependencies are built.
