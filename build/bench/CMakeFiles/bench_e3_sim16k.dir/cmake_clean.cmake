file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_sim16k.dir/bench_e3_sim16k.cpp.o"
  "CMakeFiles/bench_e3_sim16k.dir/bench_e3_sim16k.cpp.o.d"
  "bench_e3_sim16k"
  "bench_e3_sim16k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_sim16k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
