# Empty dependencies file for bench_e3_sim16k.
# This may be replaced when dependencies are built.
