# Empty dependencies file for bench_table1_time_compression.
# This may be replaced when dependencies are built.
