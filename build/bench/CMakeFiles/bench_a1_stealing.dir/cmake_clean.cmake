file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_stealing.dir/bench_a1_stealing.cpp.o"
  "CMakeFiles/bench_a1_stealing.dir/bench_a1_stealing.cpp.o.d"
  "bench_a1_stealing"
  "bench_a1_stealing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_stealing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
