file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_multicore.dir/bench_a2_multicore.cpp.o"
  "CMakeFiles/bench_a2_multicore.dir/bench_a2_multicore.cpp.o.d"
  "bench_a2_multicore"
  "bench_a2_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
