
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cats/abd.cpp" "src/cats/CMakeFiles/cats.dir/abd.cpp.o" "gcc" "src/cats/CMakeFiles/cats.dir/abd.cpp.o.d"
  "/root/repo/src/cats/bootstrap.cpp" "src/cats/CMakeFiles/cats.dir/bootstrap.cpp.o" "gcc" "src/cats/CMakeFiles/cats.dir/bootstrap.cpp.o.d"
  "/root/repo/src/cats/cats_node.cpp" "src/cats/CMakeFiles/cats.dir/cats_node.cpp.o" "gcc" "src/cats/CMakeFiles/cats.dir/cats_node.cpp.o.d"
  "/root/repo/src/cats/cats_simulator.cpp" "src/cats/CMakeFiles/cats.dir/cats_simulator.cpp.o" "gcc" "src/cats/CMakeFiles/cats.dir/cats_simulator.cpp.o.d"
  "/root/repo/src/cats/cyclon.cpp" "src/cats/CMakeFiles/cats.dir/cyclon.cpp.o" "gcc" "src/cats/CMakeFiles/cats.dir/cyclon.cpp.o.d"
  "/root/repo/src/cats/failure_detector.cpp" "src/cats/CMakeFiles/cats.dir/failure_detector.cpp.o" "gcc" "src/cats/CMakeFiles/cats.dir/failure_detector.cpp.o.d"
  "/root/repo/src/cats/linearizability.cpp" "src/cats/CMakeFiles/cats.dir/linearizability.cpp.o" "gcc" "src/cats/CMakeFiles/cats.dir/linearizability.cpp.o.d"
  "/root/repo/src/cats/messages.cpp" "src/cats/CMakeFiles/cats.dir/messages.cpp.o" "gcc" "src/cats/CMakeFiles/cats.dir/messages.cpp.o.d"
  "/root/repo/src/cats/monitor.cpp" "src/cats/CMakeFiles/cats.dir/monitor.cpp.o" "gcc" "src/cats/CMakeFiles/cats.dir/monitor.cpp.o.d"
  "/root/repo/src/cats/ring.cpp" "src/cats/CMakeFiles/cats.dir/ring.cpp.o" "gcc" "src/cats/CMakeFiles/cats.dir/ring.cpp.o.d"
  "/root/repo/src/cats/router.cpp" "src/cats/CMakeFiles/cats.dir/router.cpp.o" "gcc" "src/cats/CMakeFiles/cats.dir/router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kompics/CMakeFiles/kompics_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/kompics_net.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/kompics_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kompics_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
