file(REMOVE_RECURSE
  "CMakeFiles/cats.dir/abd.cpp.o"
  "CMakeFiles/cats.dir/abd.cpp.o.d"
  "CMakeFiles/cats.dir/bootstrap.cpp.o"
  "CMakeFiles/cats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/cats.dir/cats_node.cpp.o"
  "CMakeFiles/cats.dir/cats_node.cpp.o.d"
  "CMakeFiles/cats.dir/cats_simulator.cpp.o"
  "CMakeFiles/cats.dir/cats_simulator.cpp.o.d"
  "CMakeFiles/cats.dir/cyclon.cpp.o"
  "CMakeFiles/cats.dir/cyclon.cpp.o.d"
  "CMakeFiles/cats.dir/failure_detector.cpp.o"
  "CMakeFiles/cats.dir/failure_detector.cpp.o.d"
  "CMakeFiles/cats.dir/linearizability.cpp.o"
  "CMakeFiles/cats.dir/linearizability.cpp.o.d"
  "CMakeFiles/cats.dir/messages.cpp.o"
  "CMakeFiles/cats.dir/messages.cpp.o.d"
  "CMakeFiles/cats.dir/monitor.cpp.o"
  "CMakeFiles/cats.dir/monitor.cpp.o.d"
  "CMakeFiles/cats.dir/ring.cpp.o"
  "CMakeFiles/cats.dir/ring.cpp.o.d"
  "CMakeFiles/cats.dir/router.cpp.o"
  "CMakeFiles/cats.dir/router.cpp.o.d"
  "libcats.a"
  "libcats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
