file(REMOVE_RECURSE
  "libkompics_timing.a"
)
