file(REMOVE_RECURSE
  "CMakeFiles/kompics_timing.dir/thread_timer.cpp.o"
  "CMakeFiles/kompics_timing.dir/thread_timer.cpp.o.d"
  "libkompics_timing.a"
  "libkompics_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kompics_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
