# Empty dependencies file for kompics_timing.
# This may be replaced when dependencies are built.
