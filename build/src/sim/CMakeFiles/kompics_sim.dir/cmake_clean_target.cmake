file(REMOVE_RECURSE
  "libkompics_sim.a"
)
