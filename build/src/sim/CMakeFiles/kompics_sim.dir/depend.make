# Empty dependencies file for kompics_sim.
# This may be replaced when dependencies are built.
