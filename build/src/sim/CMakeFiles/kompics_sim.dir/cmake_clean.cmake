file(REMOVE_RECURSE
  "CMakeFiles/kompics_sim.dir/scenario.cpp.o"
  "CMakeFiles/kompics_sim.dir/scenario.cpp.o.d"
  "libkompics_sim.a"
  "libkompics_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kompics_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
