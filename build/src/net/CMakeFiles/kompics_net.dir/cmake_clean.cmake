file(REMOVE_RECURSE
  "CMakeFiles/kompics_net.dir/compression.cpp.o"
  "CMakeFiles/kompics_net.dir/compression.cpp.o.d"
  "CMakeFiles/kompics_net.dir/tcp_network.cpp.o"
  "CMakeFiles/kompics_net.dir/tcp_network.cpp.o.d"
  "libkompics_net.a"
  "libkompics_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kompics_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
