# Empty dependencies file for kompics_net.
# This may be replaced when dependencies are built.
