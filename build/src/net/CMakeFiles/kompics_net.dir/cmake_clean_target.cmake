file(REMOVE_RECURSE
  "libkompics_net.a"
)
