file(REMOVE_RECURSE
  "libkompics_web.a"
)
