file(REMOVE_RECURSE
  "CMakeFiles/kompics_web.dir/http_server.cpp.o"
  "CMakeFiles/kompics_web.dir/http_server.cpp.o.d"
  "libkompics_web.a"
  "libkompics_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kompics_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
