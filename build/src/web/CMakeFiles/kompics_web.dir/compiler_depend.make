# Empty compiler generated dependencies file for kompics_web.
# This may be replaced when dependencies are built.
