file(REMOVE_RECURSE
  "libkompics_core.a"
)
