file(REMOVE_RECURSE
  "CMakeFiles/kompics_core.dir/channel.cpp.o"
  "CMakeFiles/kompics_core.dir/channel.cpp.o.d"
  "CMakeFiles/kompics_core.dir/component.cpp.o"
  "CMakeFiles/kompics_core.dir/component.cpp.o.d"
  "CMakeFiles/kompics_core.dir/kompics.cpp.o"
  "CMakeFiles/kompics_core.dir/kompics.cpp.o.d"
  "CMakeFiles/kompics_core.dir/port.cpp.o"
  "CMakeFiles/kompics_core.dir/port.cpp.o.d"
  "CMakeFiles/kompics_core.dir/work_stealing_scheduler.cpp.o"
  "CMakeFiles/kompics_core.dir/work_stealing_scheduler.cpp.o.d"
  "libkompics_core.a"
  "libkompics_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kompics_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
