# Empty dependencies file for kompics_core.
# This may be replaced when dependencies are built.
