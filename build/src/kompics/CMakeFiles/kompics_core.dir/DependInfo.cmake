
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kompics/channel.cpp" "src/kompics/CMakeFiles/kompics_core.dir/channel.cpp.o" "gcc" "src/kompics/CMakeFiles/kompics_core.dir/channel.cpp.o.d"
  "/root/repo/src/kompics/component.cpp" "src/kompics/CMakeFiles/kompics_core.dir/component.cpp.o" "gcc" "src/kompics/CMakeFiles/kompics_core.dir/component.cpp.o.d"
  "/root/repo/src/kompics/kompics.cpp" "src/kompics/CMakeFiles/kompics_core.dir/kompics.cpp.o" "gcc" "src/kompics/CMakeFiles/kompics_core.dir/kompics.cpp.o.d"
  "/root/repo/src/kompics/port.cpp" "src/kompics/CMakeFiles/kompics_core.dir/port.cpp.o" "gcc" "src/kompics/CMakeFiles/kompics_core.dir/port.cpp.o.d"
  "/root/repo/src/kompics/work_stealing_scheduler.cpp" "src/kompics/CMakeFiles/kompics_core.dir/work_stealing_scheduler.cpp.o" "gcc" "src/kompics/CMakeFiles/kompics_core.dir/work_stealing_scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
