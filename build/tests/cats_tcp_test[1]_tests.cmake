add_test([=[CatsOverTcp.ClusterConvergesAndServesLinearizableOps]=]  /root/repo/build/tests/cats_tcp_test [==[--gtest_filter=CatsOverTcp.ClusterConvergesAndServesLinearizableOps]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[CatsOverTcp.ClusterConvergesAndServesLinearizableOps]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  cats_tcp_test_TESTS CatsOverTcp.ClusterConvergesAndServesLinearizableOps)
