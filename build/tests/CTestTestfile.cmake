# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_basics_test[1]_include.cmake")
include("/root/repo/build/tests/net_codec_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/cats_sim_test[1]_include.cmake")
include("/root/repo/build/tests/core_lifecycle_test[1]_include.cmake")
include("/root/repo/build/tests/core_reconfig_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/timer_test[1]_include.cmake")
include("/root/repo/build/tests/linearizability_test[1]_include.cmake")
include("/root/repo/build/tests/ring_key_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_network_test[1]_include.cmake")
include("/root/repo/build/tests/cats_components_test[1]_include.cmake")
include("/root/repo/build/tests/web_test[1]_include.cmake")
include("/root/repo/build/tests/api_contract_test[1]_include.cmake")
include("/root/repo/build/tests/cats_tcp_test[1]_include.cmake")
include("/root/repo/build/tests/port_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/abd_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/cats_property_test[1]_include.cmake")
include("/root/repo/build/tests/router_unit_test[1]_include.cmake")
include("/root/repo/build/tests/sim_edge_test[1]_include.cmake")
include("/root/repo/build/tests/cats_partition_test[1]_include.cmake")
