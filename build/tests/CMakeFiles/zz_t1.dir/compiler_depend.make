# Empty compiler generated dependencies file for zz_t1.
# This may be replaced when dependencies are built.
