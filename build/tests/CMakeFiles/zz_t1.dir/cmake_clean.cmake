file(REMOVE_RECURSE
  "CMakeFiles/zz_t1.dir/zz_t1.cpp.o"
  "CMakeFiles/zz_t1.dir/zz_t1.cpp.o.d"
  "zz_t1"
  "zz_t1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zz_t1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
