file(REMOVE_RECURSE
  "CMakeFiles/router_unit_test.dir/router_unit_test.cpp.o"
  "CMakeFiles/router_unit_test.dir/router_unit_test.cpp.o.d"
  "router_unit_test"
  "router_unit_test.pdb"
  "router_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
