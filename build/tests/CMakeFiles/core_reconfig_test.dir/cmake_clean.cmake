file(REMOVE_RECURSE
  "CMakeFiles/core_reconfig_test.dir/core_reconfig_test.cpp.o"
  "CMakeFiles/core_reconfig_test.dir/core_reconfig_test.cpp.o.d"
  "core_reconfig_test"
  "core_reconfig_test.pdb"
  "core_reconfig_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_reconfig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
