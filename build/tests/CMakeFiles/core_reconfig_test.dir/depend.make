# Empty dependencies file for core_reconfig_test.
# This may be replaced when dependencies are built.
