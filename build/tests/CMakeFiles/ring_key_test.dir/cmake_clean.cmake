file(REMOVE_RECURSE
  "CMakeFiles/ring_key_test.dir/ring_key_test.cpp.o"
  "CMakeFiles/ring_key_test.dir/ring_key_test.cpp.o.d"
  "ring_key_test"
  "ring_key_test.pdb"
  "ring_key_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_key_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
