# Empty compiler generated dependencies file for ring_key_test.
# This may be replaced when dependencies are built.
