# Empty compiler generated dependencies file for cats_property_test.
# This may be replaced when dependencies are built.
