file(REMOVE_RECURSE
  "CMakeFiles/cats_property_test.dir/cats_property_test.cpp.o"
  "CMakeFiles/cats_property_test.dir/cats_property_test.cpp.o.d"
  "cats_property_test"
  "cats_property_test.pdb"
  "cats_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cats_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
