file(REMOVE_RECURSE
  "CMakeFiles/cats_tcp_test.dir/cats_tcp_test.cpp.o"
  "CMakeFiles/cats_tcp_test.dir/cats_tcp_test.cpp.o.d"
  "cats_tcp_test"
  "cats_tcp_test.pdb"
  "cats_tcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cats_tcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
