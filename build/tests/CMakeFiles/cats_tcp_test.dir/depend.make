# Empty dependencies file for cats_tcp_test.
# This may be replaced when dependencies are built.
