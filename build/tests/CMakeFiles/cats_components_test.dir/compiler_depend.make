# Empty compiler generated dependencies file for cats_components_test.
# This may be replaced when dependencies are built.
