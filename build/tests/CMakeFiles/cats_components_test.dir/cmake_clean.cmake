file(REMOVE_RECURSE
  "CMakeFiles/cats_components_test.dir/cats_components_test.cpp.o"
  "CMakeFiles/cats_components_test.dir/cats_components_test.cpp.o.d"
  "cats_components_test"
  "cats_components_test.pdb"
  "cats_components_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cats_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
