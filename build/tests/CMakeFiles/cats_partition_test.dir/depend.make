# Empty dependencies file for cats_partition_test.
# This may be replaced when dependencies are built.
