file(REMOVE_RECURSE
  "CMakeFiles/cats_partition_test.dir/cats_partition_test.cpp.o"
  "CMakeFiles/cats_partition_test.dir/cats_partition_test.cpp.o.d"
  "cats_partition_test"
  "cats_partition_test.pdb"
  "cats_partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cats_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
