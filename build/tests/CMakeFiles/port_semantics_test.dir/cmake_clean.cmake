file(REMOVE_RECURSE
  "CMakeFiles/port_semantics_test.dir/port_semantics_test.cpp.o"
  "CMakeFiles/port_semantics_test.dir/port_semantics_test.cpp.o.d"
  "port_semantics_test"
  "port_semantics_test.pdb"
  "port_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/port_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
