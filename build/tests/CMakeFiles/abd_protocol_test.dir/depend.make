# Empty dependencies file for abd_protocol_test.
# This may be replaced when dependencies are built.
