file(REMOVE_RECURSE
  "CMakeFiles/abd_protocol_test.dir/abd_protocol_test.cpp.o"
  "CMakeFiles/abd_protocol_test.dir/abd_protocol_test.cpp.o.d"
  "abd_protocol_test"
  "abd_protocol_test.pdb"
  "abd_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abd_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
