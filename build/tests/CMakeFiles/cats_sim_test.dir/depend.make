# Empty dependencies file for cats_sim_test.
# This may be replaced when dependencies are built.
