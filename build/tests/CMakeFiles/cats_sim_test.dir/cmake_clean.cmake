file(REMOVE_RECURSE
  "CMakeFiles/cats_sim_test.dir/cats_sim_test.cpp.o"
  "CMakeFiles/cats_sim_test.dir/cats_sim_test.cpp.o.d"
  "cats_sim_test"
  "cats_sim_test.pdb"
  "cats_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cats_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
