# Empty compiler generated dependencies file for cats_cluster.
# This may be replaced when dependencies are built.
