file(REMOVE_RECURSE
  "CMakeFiles/cats_cluster.dir/cats_cluster.cpp.o"
  "CMakeFiles/cats_cluster.dir/cats_cluster.cpp.o.d"
  "cats_cluster"
  "cats_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cats_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
