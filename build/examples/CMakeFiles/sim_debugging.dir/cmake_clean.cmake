file(REMOVE_RECURSE
  "CMakeFiles/sim_debugging.dir/sim_debugging.cpp.o"
  "CMakeFiles/sim_debugging.dir/sim_debugging.cpp.o.d"
  "sim_debugging"
  "sim_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
