# Empty dependencies file for sim_debugging.
# This may be replaced when dependencies are built.
