# Empty compiler generated dependencies file for cats_simulation.
# This may be replaced when dependencies are built.
