file(REMOVE_RECURSE
  "CMakeFiles/cats_simulation.dir/cats_simulation.cpp.o"
  "CMakeFiles/cats_simulation.dir/cats_simulation.cpp.o.d"
  "cats_simulation"
  "cats_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cats_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
